// Dimensionality estimation via permutation counting — the novel
// application the paper's conclusions propose: compare the number of
// distance permutations a database exhibits with the Euclidean maxima
// N_{d,2}(k) to characterise its dimensionality "in a highly general
// way", independent of the metric and of the data distribution.
//
// The example estimates the dimensionality of several synthetic
// databases whose true structure is known, including non-vector data
// (strings under edit distance).
//
//   ./example_dimensionality [--points=20000] [--sites=9]

#include <cstdio>
#include <iostream>

#include "core/dimension_estimate.h"
#include "core/intrinsic_dim.h"
#include "core/perm_counter.h"
#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::core::CountDistinctPermutations;
using distperm::core::EstimateEuclideanDimension;
using distperm::core::EstimateIntrinsicDimensionality;
using distperm::core::SelectRandomSites;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

namespace {

template <typename P>
void Report(TablePrinter* table, const std::string& label,
            const std::vector<P>& data, const Metric<P>& metric,
            size_t sites_count, Rng* rng) {
  auto sites = SelectRandomSites(data, sites_count, rng);
  auto count = CountDistinctPermutations(data, sites, metric);
  double dim_estimate = EstimateEuclideanDimension(
      count.distinct_permutations, static_cast<int>(sites_count));
  double rho =
      EstimateIntrinsicDimensionality(data, metric, 20000, rng).rho;
  char dim_s[32], rho_s[32];
  std::snprintf(dim_s, sizeof(dim_s), "%.2f", dim_estimate);
  std::snprintf(rho_s, sizeof(rho_s), "%.2f", rho);
  table->AddRow({label, std::to_string(data.size()),
                 std::to_string(count.distinct_permutations), dim_s,
                 rho_s});
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 20000));
  const size_t sites = static_cast<size_t>(flags.value().GetInt("sites", 9));

  Rng rng(7);
  Metric<Vector> l2(distperm::metric::LpMetric::L2());
  Metric<std::string> lev((distperm::metric::LevenshteinMetric()));

  TablePrinter table;
  table.SetHeader({"database", "n", "perms", "perm-dim estimate", "rho"});

  // Vector databases with known intrinsic dimension.
  for (size_t d : {1u, 2u, 3u, 5u, 8u}) {
    auto data = distperm::dataset::UniformCube(points, d, &rng);
    Report(&table, "uniform d=" + std::to_string(d), data, l2, sites,
           &rng);
  }
  // A 2-dimensional manifold embedded in 10 dimensions: the estimator
  // should report ~2, not 10.
  {
    auto data = distperm::dataset::LowDimEmbedding(points, 10, 2, 0.0,
                                                   &rng);
    Report(&table, "2-manifold in R^10", data, l2, sites, &rng);
  }
  // Clustered data: lower effective dimensionality than its ambient d.
  {
    auto data =
        distperm::dataset::ClusteredCloud(points, 8, 10, 0.02, &rng);
    Report(&table, "10 clusters in R^8", data, l2, sites, &rng);
  }
  // Non-vector data: strings under edit distance.  The estimator still
  // applies — this is the "highly general" part.
  {
    distperm::dataset::LanguageProfile profile;
    profile.name = "Estimator";
    auto words = distperm::dataset::MarkovWordGenerator(profile)
                     .Dictionary(points / 2, &rng);
    Report(&table, "dictionary (edit dist)", words, lev, sites, &rng);
  }
  {
    auto dna =
        distperm::dataset::DnaSequences(points / 2, 8, 12, 40, 0.08, &rng);
    Report(&table, "DNA families (edit dist)", dna, lev, sites, &rng);
  }

  std::cout << "Permutation-count dimensionality estimation (paper "
               "Section 5 / conclusions)\n\n";
  table.Print(std::cout);
  std::cout << "\nThe perm-dim column tracks the true intrinsic dimension "
               "for the vector databases (slightly low, since sampling "
               "never exhausts every Voronoi cell) and gives a sensible "
               "Euclidean-equivalent dimension for the string data.\n";
  return 0;
}
