// Batch query descriptions for the concurrent engine.
//
// A batch is a vector of QuerySpec: each entry asks for either the k
// nearest neighbours of a point or all points within a radius.  Results
// come back in batch order with global database ids, so callers never
// see the sharding.

#ifndef DISTPERM_ENGINE_QUERY_H_
#define DISTPERM_ENGINE_QUERY_H_

#include <cstddef>
#include <utility>

namespace distperm {
namespace engine {

enum class QueryType { kKnn, kRange };

/// One query in a batch: a point plus either k (kKnn) or radius (kRange).
template <typename P>
struct QuerySpec {
  QueryType type = QueryType::kKnn;
  P point{};
  size_t k = 0;
  double radius = 0.0;

  static QuerySpec Knn(P point, size_t k) {
    QuerySpec spec;
    spec.type = QueryType::kKnn;
    spec.point = std::move(point);
    spec.k = k;
    return spec;
  }

  static QuerySpec Range(P point, double radius) {
    QuerySpec spec;
    spec.type = QueryType::kRange;
    spec.point = std::move(point);
    spec.radius = radius;
    return spec;
  }
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_QUERY_H_
