// Sharded database: one SearchIndex per contiguous slice of the data.
//
// Shard s owns the global id range [offset(s), offset(s) + shard size);
// a shard-local result id maps back to a global id by adding the
// offset.  Contiguous slicing keeps that mapping O(1) and makes the
// sharded cost model additive: the metric evaluations of one query
// summed over all shards equal the evaluations a single index over the
// whole database would spend (exactly, for the linear scan).
//
// Builds scale with cores: `build_threads` > 1 constructs the shard
// indexes concurrently on a transient util::ThreadPool.  Shard builds
// are independent jobs (AESA's O(n^2) matrix, LAESA's O(nk) pivot
// table) and every shard's RNG stream is derived deterministically from
// (seed, shard number), so a given (data, spec, shard_count, seed)
// builds bit-identical shards no matter how many build threads run.
// `data` is taken by value: callers that move their vector in hand each
// shard its slice by element moves — no second full copy of the
// database is ever made.
//
// Shards are held by shared_ptr so incremental compaction can assemble
// a successor database that reuses untouched shards from its
// predecessor (FromShards) instead of rebuilding them.  The per-shard
// RNG stream depends only on (seed, shard number) — never on the
// generation number — which is what makes sharing sound: a clean
// shard's index is bit-identical to what a fresh per-slice rebuild
// would produce over the same slice.

#ifndef DISTPERM_ENGINE_SHARDED_DATABASE_H_
#define DISTPERM_ENGINE_SHARDED_DATABASE_H_

#include <functional>
#include <iterator>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "index/index.h"
#include "index/registry.h"
#include "metric/metric.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace distperm {
namespace engine {

/// Owns `shard_count` indexes built over contiguous slices of one
/// database.  Immutable (and therefore freely shareable across query
/// threads) once built.
template <typename P>
class ShardedDatabase {
 public:
  using SharedShard = std::shared_ptr<const index::SearchIndex<P>>;

  /// Builds one index over one shard's slice of the data.  Called once
  /// per shard, in shard order when `build_threads` is 1; with more
  /// build threads the calls run concurrently, so the factory must be
  /// thread-safe (stateless factories and the registry path are).
  using IndexFactory =
      std::function<std::unique_ptr<index::SearchIndex<P>>(
          std::vector<P> shard_data, const metric::Metric<P>& metric,
          size_t shard_number)>;

  /// Splits `data` into `shard_count` contiguous slices (sizes differing
  /// by at most one) and builds an index over each, on `build_threads`
  /// workers (1 = on the calling thread, the default).  Pass the data
  /// with std::move to slice by element moves instead of copies.
  static ShardedDatabase Build(std::vector<P> data,
                               const metric::Metric<P>& metric,
                               size_t shard_count,
                               const IndexFactory& factory,
                               size_t build_threads = 1) {
    DP_CHECK(shard_count >= 1);
    std::vector<size_t> offsets;
    return BuildSliced(SliceData(std::move(data), shard_count, &offsets),
                       metric, factory, build_threads);
  }

  /// Builds one index per pre-routed slice.  The slices ARE the shard
  /// layout: shard s serves global ids [sum of earlier slice sizes,
  /// +slices[s].size()).  Used by incremental compaction and snapshot
  /// restore, where shard boundaries follow the delta routing instead
  /// of the uniform split.
  static ShardedDatabase BuildSliced(std::vector<std::vector<P>> slices,
                                     const metric::Metric<P>& metric,
                                     const IndexFactory& factory,
                                     size_t build_threads = 1) {
    DP_CHECK(!slices.empty());
    const size_t shard_count = slices.size();
    ShardedDatabase db;
    size_t offset = 0;
    std::vector<size_t> sizes(shard_count);
    for (size_t s = 0; s < shard_count; ++s) {
      sizes[s] = slices[s].size();
      db.offsets_.push_back(offset);
      offset += sizes[s];
    }
    db.total_size_ = offset;
    db.shards_.resize(shard_count);
    ForEachShard(shard_count, build_threads, [&](size_t s) {
      db.shards_[s] = factory(std::move(slices[s]), metric, s);
    });
    for (size_t s = 0; s < shard_count; ++s) {
      DP_CHECK(db.shards_[s] != nullptr);
      DP_CHECK(db.shards_[s]->size() == sizes[s]);
    }
    return db;
  }

  /// Like Build, but the index type and its options come from a
  /// runtime `index_spec` string resolved through index::Registry
  /// (e.g. "vp-tree", "laesa:k=16", "distperm:k=8,fraction=0.2").
  /// Each shard gets its own deterministic RNG stream derived from
  /// `seed`, so a given (data, spec, shard_count, seed) always builds
  /// the same database — with any number of build threads.  Returns the
  /// registry's or parser's error for bad specs instead of dying; with
  /// several failing shards the lowest-numbered shard's error wins, so
  /// the reported status is deterministic too.
  static util::Result<ShardedDatabase> BuildFromRegistry(
      std::vector<P> data, const metric::Metric<P>& metric,
      size_t shard_count, const std::string& index_spec, uint64_t seed,
      size_t build_threads = 1) {
    if (shard_count < 1) {
      return util::Status::InvalidArgument(
          "ShardedDatabase: shard_count must be >= 1");
    }
    std::vector<size_t> offsets;
    return BuildFromRegistrySliced(
        SliceData(std::move(data), shard_count, &offsets), metric,
        index_spec, seed, build_threads);
  }

  /// Registry build over pre-routed slices.  Shard s's RNG stream is
  /// still derived from (seed, s) alone, so a shard built here over a
  /// given slice is bit-identical to the same shard inside any other
  /// build whose slice s matches — the property incremental compaction
  /// relies on to share clean shards.
  static util::Result<ShardedDatabase> BuildFromRegistrySliced(
      std::vector<std::vector<P>> slices, const metric::Metric<P>& metric,
      const std::string& index_spec, uint64_t seed,
      size_t build_threads = 1) {
    if (slices.empty()) {
      return util::Status::InvalidArgument(
          "ShardedDatabase: need at least one slice");
    }
    const size_t shard_count = slices.size();
    ShardedDatabase db;
    size_t offset = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      db.offsets_.push_back(offset);
      offset += slices[s].size();
    }
    db.total_size_ = offset;
    db.shards_.resize(shard_count);
    std::vector<util::Status> statuses(shard_count, util::Status::OK());
    ForEachShard(shard_count, build_threads, [&](size_t s) {
      util::Rng rng(seed * 0x9e3779b97f4a7c15ull + s);
      util::Result<std::unique_ptr<index::SearchIndex<P>>> built =
          index::Registry<P>::Global().Create(index_spec,
                                              std::move(slices[s]),
                                              metric, &rng);
      if (!built.ok()) {
        statuses[s] = built.status();
        return;
      }
      db.shards_[s] = std::move(built).value();
    });
    for (size_t s = 0; s < shard_count; ++s) {
      if (!statuses[s].ok()) {
        return util::Status(statuses[s].code(),
                            "shard " + std::to_string(s) + ": " +
                                statuses[s].message());
      }
    }
    return db;
  }

  /// Assembles a database from already-built shards — the incremental
  /// compaction path: clean shards are the predecessor's shared_ptrs,
  /// dirty shards are freshly registry-built over their new slice.
  /// Offsets are recomputed from the shard sizes in order.
  static ShardedDatabase FromShards(std::vector<SharedShard> shards) {
    DP_CHECK(!shards.empty());
    ShardedDatabase db;
    size_t offset = 0;
    for (const auto& shard : shards) {
      DP_CHECK(shard != nullptr);
      db.offsets_.push_back(offset);
      offset += shard->size();
    }
    db.total_size_ = offset;
    db.shards_ = std::move(shards);
    return db;
  }

  size_t shard_count() const { return shards_.size(); }
  size_t size() const { return total_size_; }

  /// The index serving shard s.
  const index::SearchIndex<P>& shard(size_t s) const { return *shards_[s]; }

  /// Shard s as a shareable reference — what a successor generation
  /// adopts verbatim when the shard's slice was untouched by the delta.
  const SharedShard& shared_shard(size_t s) const { return shards_[s]; }

  /// Global id of shard s's local id 0.
  size_t shard_offset(size_t s) const { return offsets_[s]; }

  /// Per-shard sizes in shard order (the layout a snapshot records so
  /// restore can slice the points identically).
  std::vector<size_t> ShardSizes() const {
    std::vector<size_t> sizes;
    sizes.reserve(shards_.size());
    for (const auto& shard : shards_) sizes.push_back(shard->size());
    return sizes;
  }

  /// Reassembles the database in global-id order (shard slices are
  /// contiguous, so concatenating them in shard order restores the
  /// original ordering exactly).  This is the base dataset a
  /// engine::Generation rebuild starts from: compaction collects the
  /// current generation's points, applies the delta, and builds the
  /// replacement shards from the result — no second long-lived copy of
  /// the database is kept anywhere.
  std::vector<P> CollectData() const {
    std::vector<P> data;
    data.reserve(total_size_);
    for (const auto& shard : shards_) {
      data.insert(data.end(), shard->data().begin(), shard->data().end());
    }
    return data;
  }

  /// Name of the underlying index type (from shard 0).
  std::string index_name() const { return shards_.front()->name(); }

  /// Metric evaluations spent building all shards.
  uint64_t build_distance_computations() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->build_distance_computations();
    }
    return total;
  }

  /// Auxiliary storage across all shards, in bits.
  uint64_t IndexBits() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->IndexBits();
    return total;
  }

 private:
  ShardedDatabase() = default;

  /// Moves `data` apart into `shard_count` contiguous slices whose
  /// sizes differ by at most one, recording each slice's global offset.
  /// Element moves, not copies: the caller already owns `data` by
  /// value, so this is the only per-point transfer in a build.
  static std::vector<std::vector<P>> SliceData(
      std::vector<P> data, size_t shard_count,
      std::vector<size_t>* offsets) {
    const size_t base = data.size() / shard_count;
    const size_t extra = data.size() % shard_count;
    std::vector<std::vector<P>> slices;
    slices.reserve(shard_count);
    size_t offset = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      const size_t size = base + (s < extra ? 1 : 0);
      auto begin = data.begin() + static_cast<ptrdiff_t>(offset);
      slices.emplace_back(std::make_move_iterator(begin),
                          std::make_move_iterator(begin + size));
      offsets->push_back(offset);
      offset += size;
    }
    return slices;
  }

  /// Runs `build` for every shard number: in shard order on the calling
  /// thread when `build_threads` <= 1, otherwise concurrently on a
  /// transient pool (one task per shard; the per-shard work is
  /// self-contained, so no synchronization beyond the final Wait).
  template <typename BuildShard>
  static void ForEachShard(size_t shard_count, size_t build_threads,
                           const BuildShard& build) {
    if (build_threads <= 1 || shard_count <= 1) {
      for (size_t s = 0; s < shard_count; ++s) build(s);
      return;
    }
    util::ThreadPool pool(std::min(build_threads, shard_count));
    for (size_t s = 0; s < shard_count; ++s) {
      pool.Submit([&build, s]() { build(s); });
    }
    pool.Wait();
  }

  std::vector<SharedShard> shards_;
  std::vector<size_t> offsets_;
  size_t total_size_ = 0;
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_SHARDED_DATABASE_H_
