// Extension beyond the paper's {1, 2, inf}: permutation counts for
// general Lp metrics (p = 1.5, 3, 4, ...).  Section 4 conjectures the
// count "should be approximately the same for all the Lp metrics"; the
// paper proves bounds only for p in {1, 2, inf} because only those have
// piecewise-linear bisectors.  This sweep measures the interpolation
// empirically, and also probes whether the paper's L1 counterexample
// sites exceed the Euclidean limit under nearby finite p (they approach
// the L1 behaviour as p -> 1).
//
// Usage: ablation_general_p [--points=100000] [--runs=5] [--seed=2]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/euclidean_count.h"
#include "core/perm_counter.h"
#include "dataset/vector_gen.h"
#include "geometry/cell_enum.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::metric::LpMetric;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 100000));
  const int runs = static_cast<int>(flags.value().GetInt("runs", 5));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 2));

  const std::vector<double> ps = {1.0, 1.25, 1.5, 2.0, 3.0,
                                  4.0, 8.0,  16.0};

  std::cout << "Extension: permutation counts under general Lp metrics\n";
  std::cout << "uniform vectors, d = 4, k = 8, points=" << points
            << ", runs=" << runs << "\n\n";
  TablePrinter table;
  table.SetHeader({"p", "mean perms", "max perms"});
  Rng master(seed);
  for (double p : ps) {
    Metric<Vector> metric{LpMetric(p)};
    double mean = 0.0;
    size_t maximum = 0;
    for (int run = 0; run < runs; ++run) {
      Rng rng = master.Split();
      auto data = distperm::dataset::UniformCube(points, 4, &rng);
      auto sites = distperm::core::SelectRandomSites(data, 8, &rng);
      auto result =
          distperm::core::CountDistinctPermutations(data, sites, metric);
      mean += static_cast<double>(result.distinct_permutations);
      maximum = std::max(maximum, result.distinct_permutations);
    }
    char p_s[16], mean_s[32];
    std::snprintf(p_s, sizeof(p_s), "%g", p);
    std::snprintf(mean_s, sizeof(mean_s), "%.1f", mean / runs);
    table.AddRow({p_s, mean_s, std::to_string(maximum)});
    std::cerr << "p=" << p << " done\n";
  }
  table.Print(std::cout);

  std::cout << "\nPaper counterexample sites under finite p (sampling, "
               "unit cube):\n\n";
  std::vector<Vector> paper_sites = {
      {0.205281, 0.621547, 0.332507}, {0.053421, 0.344351, 0.260859},
      {0.418166, 0.207143, 0.119789}, {0.735218, 0.653301, 0.650154},
      {0.527133, 0.814207, 0.704307},
  };
  distperm::core::EuclideanCounter counter;
  TablePrinter cx;
  cx.SetHeader({"p", "perms found", "Euclidean limit 96 exceeded?"});
  for (double p : {1.0, 1.1, 1.25, 1.5, 2.0}) {
    Rng rng = master.Split();
    auto cells = distperm::geometry::EnumerateCellsBySampling(
        paper_sites, p, 0.0, 1.0, 400000, &rng);
    char p_s[16];
    std::snprintf(p_s, sizeof(p_s), "%g", p);
    cx.AddRow({p_s, std::to_string(cells.count()),
               cells.count() > 96 ? "YES" : "no"});
  }
  cx.Print(std::cout);
  std::cout << "\nCounts vary smoothly in p, supporting the paper's "
               "intuition; the excess over the Euclidean limit fades as "
               "p moves away from 1.\n";
  return 0;
}
