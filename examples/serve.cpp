// Network serving walkthrough: open a LiveDatabase (optionally
// durable), put a SearchServer in front of it, and answer the binary
// protocol until SIGINT/SIGTERM — then drain, compact, and exit 0.
//
//   ./example_serve [--spec=vp-tree] [--shards=4] [--points=4096]
//                   [--dim=16] [--seed=42] [--port=7471]
//                   [--metrics-port=0] [--threads=2]
//                   [--build-threads=2] [--dir=]
//                   [--cache-capacity=4096] [--cache-sites=12]
//                   [--cache-prefix=4] [--cache-ttl-seconds=0]
//                   [--admission-budget=0] [--max-requests-per-conn=256]
//                   [--idle-timeout-ms=0]
//                   [--replicate-from=0] [--primary-host=127.0.0.1]
//
// With --dir the store is durable: a directory that already holds a
// snapshot is recovered (the on-disk store IS the data; --points is
// ignored), a fresh one is seeded with --points of UniformCube.  On
// shutdown the WAL tail is folded with a final Compact(), so a
// subsequent run resumes exactly where this one stopped.
//
// With --replicate-from=PORT the process is a read replica instead:
// it bootstraps --dir from the primary at --primary-host:PORT (or
// recovers an existing replica directory), tails the primary's WAL
// stream, and serves read-only queries that stay bit-identical to the
// primary's.  --spec/--seed/--shards must match the primary; --points
// is ignored.  Losing the primary degrades the replica to stale reads
// plus reconnect attempts — it never exits on its own.

#include <csignal>
#include <iostream>
#include <thread>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "metric/lp.h"
#include "obs/metrics.h"
#include "server/replica_server.h"
#include "server/search_server.h"
#include "storage/env.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::engine::LiveDatabase;
using distperm::engine::LiveOptions;
using distperm::metric::Vector;
using distperm::server::ReplicaServer;
using distperm::server::SearchServer;

namespace {

volatile std::sig_atomic_t g_signal = 0;
void HandleSignal(int signal) { g_signal = signal; }

/// The replica branch of main(): everything between flag parsing and
/// exit when --replicate-from is set.
int RunReplica(const distperm::util::Flags& f) {
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  distperm::obs::MetricsRegistry metrics("replica");
  ReplicaServer<Vector>::Options options;
  options.dir = f.GetString("dir", "");
  if (options.dir.empty()) {
    std::cerr << "--replicate-from requires --dir\n";
    return 1;
  }
  options.index_spec = f.GetString("spec", "vp-tree");
  options.seed = static_cast<uint64_t>(f.GetInt("seed", 42));
  options.shard_count = static_cast<size_t>(f.GetInt("shards", 4));
  options.build_threads = static_cast<size_t>(f.GetInt("build-threads", 2));
  options.engine_threads = static_cast<size_t>(f.GetInt("threads", 2));
  options.metrics = &metrics;
  options.replication.primary_host =
      f.GetString("primary-host", "127.0.0.1");
  options.replication.primary_port =
      static_cast<uint16_t>(f.GetInt("replicate-from", 0));

  auto opened = ReplicaServer<Vector>::Open(l2, options);
  if (!opened.ok()) {
    std::cerr << opened.status() << "\n";
    return 1;
  }
  ReplicaServer<Vector>& replica = *opened.value();
  const uint16_t port = static_cast<uint16_t>(f.GetInt("port", 7472));
  if (auto status = replica.Start(port); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  if (f.Has("metrics-port")) {
    const uint16_t metrics_port =
        static_cast<uint16_t>(f.GetInt("metrics-port", 0));
    if (auto status = replica.StartMetrics(metrics_port); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "metrics: http://127.0.0.1:"
              << replica.server().metrics_port() << "/metrics\n";
  }
  std::cout << "replica of " << options.replication.primary_host << ":"
            << options.replication.primary_port << ", generation "
            << replica.db().generation_number()
            << ", n=" << replica.db().size() << "\n";
  std::cout << "serving on port " << replica.server().port() << "\n"
            << std::flush;

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::thread serving([&replica]() { replica.Run(); });
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "signal " << static_cast<int>(g_signal) << ": draining\n";
  // No final Compact(): a replica never rotates its own generation.
  replica.Shutdown();
  serving.join();
  std::cout << "applied " << replica.replication().applied_records()
            << " records over " << replica.replication().reconnects()
            << " connections\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const distperm::util::Flags& f = flags.value();
  if (f.Has("replicate-from")) return RunReplica(f);
  const std::string spec = f.GetString("spec", "vp-tree");
  const size_t shards = static_cast<size_t>(f.GetInt("shards", 4));
  const size_t points = static_cast<size_t>(f.GetInt("points", 4096));
  const size_t dim = static_cast<size_t>(f.GetInt("dim", 16));
  const uint64_t seed = static_cast<uint64_t>(f.GetInt("seed", 42));
  const uint16_t port = static_cast<uint16_t>(f.GetInt("port", 7471));
  const uint16_t metrics_port =
      static_cast<uint16_t>(f.GetInt("metrics-port", 0));
  const std::string dir = f.GetString("dir", "");

  // The store: durable when --dir names a directory, in-memory
  // otherwise.  Recovery detects an existing snapshot in --dir and
  // opens with empty data.
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  std::vector<Vector> data;
  std::string live_spec = spec;
  if (!dir.empty()) {
    distperm::storage::Env* env = distperm::storage::Env::Default();
    env->CreateDir(dir);
    bool has_snapshot = false;
    if (auto listing = env->ListDir(dir); listing.ok()) {
      for (const std::string& name : listing.value()) {
        if (name.rfind("snapshot-", 0) == 0) has_snapshot = true;
      }
    }
    if (!has_snapshot) {
      distperm::util::Rng rng(seed);
      data = distperm::dataset::UniformCube(points, dim, &rng);
    }
    live_spec += (live_spec.find(':') == std::string::npos ? ":" : ",");
    live_spec += "wal_dir=" + dir;
  } else {
    distperm::util::Rng rng(seed);
    data = distperm::dataset::UniformCube(points, dim, &rng);
  }

  distperm::obs::MetricsRegistry metrics("serve");
  LiveOptions live_options;
  live_options.build_threads =
      static_cast<size_t>(f.GetInt("build-threads", 2));
  live_options.metrics = &metrics;
  auto opened = LiveDatabase<Vector>::Open(std::move(data), l2, shards,
                                           live_spec, seed, live_options);
  if (!opened.ok()) {
    std::cerr << opened.status() << "\n";
    return 1;
  }
  LiveDatabase<Vector>& db = *opened.value();
  std::cout << "store: " << db.index_spec() << " x " << shards
            << " shards, generation " << db.generation_number()
            << ", n=" << db.size()
            << (dir.empty() ? "" : ", wal_dir=" + dir) << "\n";

  SearchServer<Vector>::Options server_options;
  server_options.engine_threads =
      static_cast<size_t>(f.GetInt("threads", 2));
  server_options.max_inflight_distance_budget =
      static_cast<uint64_t>(f.GetInt("admission-budget", 0));
  server_options.max_requests_per_connection =
      static_cast<size_t>(f.GetInt("max-requests-per-conn", 256));
  server_options.idle_timeout_ms =
      static_cast<uint64_t>(f.GetInt("idle-timeout-ms", 0));
  server_options.perm_cache_capacity =
      static_cast<size_t>(f.GetInt("cache-capacity", 4096));
  server_options.perm_cache_sites =
      static_cast<size_t>(f.GetInt("cache-sites", 12));
  server_options.perm_cache_prefix =
      static_cast<size_t>(f.GetInt("cache-prefix", 4));
  server_options.perm_cache_ttl_seconds =
      static_cast<uint64_t>(f.GetInt("cache-ttl-seconds", 0));
  server_options.metrics = &metrics;
  SearchServer<Vector> server(&db, server_options);
  if (auto status = server.Start(port); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  if (metrics_port != 0 || f.Has("metrics-port")) {
    if (auto status = server.StartMetrics(metrics_port); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "metrics: http://127.0.0.1:" << server.metrics_port()
              << "/metrics\n";
  }
  std::cout << "serving on port " << server.port() << "\n" << std::flush;

  // Shutdown ordering: signal -> stop accepting + drain (Shutdown) ->
  // loop exits -> final Compact() folds the WAL tail for durable
  // stores -> exit 0.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::thread serving([&server]() { server.Run(); });
  while (g_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cout << "signal " << static_cast<int>(g_signal)
            << ": draining\n";
  server.Shutdown();
  serving.join();
  if (!dir.empty()) {
    if (auto status = db.Compact(); !status.ok()) {
      std::cerr << "final compact: " << status << "\n";
      return 1;
    }
    std::cout << "compacted to generation " << db.generation_number()
              << "\n";
  }
  std::cout << "served " << server.requests_served() << " requests in "
            << server.batches_executed() << " batches, "
            << server.overload_rejected() << " overload-rejected, "
            << server.decode_errors() << " decode errors\n";
  return 0;
}
