#include "core/perm_table.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/perm_codec.h"
#include "util/status.h"

namespace distperm {
namespace core {

PermutationTable PermutationTable::Build(
    const std::vector<Permutation>& perms) {
  PermutationTable out;
  out.point_count_ = perms.size();
  if (perms.empty()) return out;
  out.sites_ = perms[0].size();
  DP_CHECK(out.sites_ <= kMaxRank64Sites);

  std::vector<uint64_t> ranks(perms.size());
  for (size_t i = 0; i < perms.size(); ++i) {
    DP_CHECK_MSG(perms[i].size() == out.sites_,
                 "mixed permutation sizes in one table");
    ranks[i] = RankPermutation(perms[i]);
  }
  out.table_ = ranks;
  std::sort(out.table_.begin(), out.table_.end());
  out.table_.erase(std::unique(out.table_.begin(), out.table_.end()),
                   out.table_.end());

  out.index_width_ = util::BitsFor(out.table_.size());
  out.rank_width_ =
      util::BitsForFactorial(static_cast<int>(out.sites_));

  util::BitWriter writer;
  for (uint64_t rank : ranks) {
    size_t index = static_cast<size_t>(
        std::lower_bound(out.table_.begin(), out.table_.end(), rank) -
        out.table_.begin());
    writer.Write(index, out.index_width_);
  }
  out.index_stream_ = writer.Finish();
  return out;
}

Permutation PermutationTable::Get(size_t index) const {
  DP_CHECK(index < point_count_);
  util::BitReader reader(index_stream_);
  for (size_t skip = 0; skip < index; ++skip) reader.Read(index_width_);
  uint64_t table_index = reader.Read(index_width_);
  return UnrankPermutation(table_[table_index], sites_);
}

uint64_t PermutationTable::TotalBits() const {
  return static_cast<uint64_t>(index_width_) * point_count_ +
         static_cast<uint64_t>(rank_width_) * table_.size();
}

uint64_t PermutationTable::RawBits() const {
  return static_cast<uint64_t>(rank_width_) * point_count_;
}

double PermutationEntropyBits(const std::vector<Permutation>& perms) {
  if (perms.empty()) return 0.0;
  std::unordered_map<uint64_t, size_t> histogram;
  for (const Permutation& perm : perms) {
    ++histogram[PermutationKey(perm)];
  }
  double entropy = 0.0;
  const double n = static_cast<double>(perms.size());
  for (const auto& [key, count] : histogram) {
    double p = static_cast<double>(count) / n;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace core
}  // namespace distperm
