// A result/bound cache keyed by the query's distance permutation.
//
// The paper's object — the distance permutation Pi_y of a point y with
// respect to k sites — is a cheap, metric-aware locality signature:
// two queries with equal permutations rank every site identically, so
// they sit in the same cell of the site Voronoi-like partition.  The
// cache exploits it twice:
//
//  * Answer cache (full key = permutation bytes + the encoded request
//    payload): a repeated request replays its cached WireSearchResponse
//    verbatim, costing only the site-distance probe.  Collisions are
//    impossible — the map compares the entire key, and the key embeds
//    the whole request.
//
//  * Bound table (prefix key = first `prefix_length` permutation
//    entries + mode + k): a *different* query that lands in the same
//    permutation-prefix cell seeds its initial_radius_bound from a
//    cached neighbour's k-th distance via the triangle inequality.
//    For the cached query q_c with k-th distance d_c and any site s_i,
//        d(q, p) <= d(q, q_c) + d(q_c, p)
//                <= min_i (d(q, s_i) + d(s_i, q_c)) + d_c
//    holds for each of q_c's k results p, so at least k points lie
//    within that radius of q and the bound is valid.  SearchRequest's
//    exactness contract (bound >= true k-th distance => bit-identical
//    results) makes the seed a pure pruning win: it can only reduce
//    distance computations, never change exact results.
//
// Invalidation is clock-based, not event-based.  The server reads the
// LiveDatabase's pin-free clocks BEFORE pinning the snapshot a batch
// runs against, and stamps entries with those tags:
//
//  * answers are valid while (generation, mutation_clock) both match —
//    any insert, remove, or compaction swap (ids remap) kills them;
//  * bounds are valid while remove_clock matches — inserts only
//    shrink true k-th distances and compactions preserve the live
//    point set, so only removes can grow the k-th distance.
//
// Because tags are read before the pin they guard, an entry stamped T
// only ever serves when zero mutations landed since T: any interleaved
// write bumps the clock before a later lookup observes equality.
//
// Probe cost (one metric evaluation per site) is accounted in its own
// counter, never folded into query stats — remote distance counts stay
// bit-identical to in-process runs.

#ifndef DISTPERM_SERVER_PERM_CACHE_H_
#define DISTPERM_SERVER_PERM_CACHE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/distance_permutation.h"
#include "index/search.h"
#include "metric/metric.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace distperm {
namespace server {

/// Mutation tags a cache entry is stamped with; see the header comment
/// for the validity rules.  Read these from the LiveDatabase BEFORE
/// pinning the snapshot the batch runs against.
struct CacheTags {
  uint64_t generation = 0;
  uint64_t mutation_clock = 0;
  uint64_t remove_clock = 0;
};

/// Non-template storage: sharded LRU answer map + bound table, with
/// counters.  PermCache<P> layers the metric-dependent probe on top.
class PermCacheStore {
 public:
  struct Options {
    /// Total answer-entry capacity across shards; 0 disables the cache.
    size_t capacity = 4096;
    size_t shard_count = 8;
    /// Permutation prefix length for the bound table.
    size_t prefix_length = 4;
    /// Entries older than this are stale regardless of tags; 0 = no TTL.
    uint64_t ttl_seconds = 0;
    /// Seed initial_radius_bound from the bound table.
    bool enable_bounds = true;
    /// Optional registry for perm_cache_* counters.
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit PermCacheStore(const Options& options);
  ~PermCacheStore();
  PermCacheStore(const PermCacheStore&) = delete;
  PermCacheStore& operator=(const PermCacheStore&) = delete;

  /// Answer lookup; on a valid hit copies the cached response into
  /// `*out` and returns true.  Tag/TTL mismatches erase the entry.
  bool LookupAnswer(const std::string& key, const CacheTags& tags,
                    net::WireSearchResponse* out);
  void FillAnswer(const std::string& key,
                  const net::WireSearchResponse& response,
                  const CacheTags& tags);

  /// Bound lookup; on a valid hit copies the cached k-th distance and
  /// the cached query's site distances and returns true.
  bool LookupBound(const std::string& key, const CacheTags& tags,
                   double* kth_distance,
                   std::vector<double>* site_distances);
  void FillBound(const std::string& key, double kth_distance,
                 const std::vector<double>& site_distances,
                 const CacheTags& tags);

  void RecordProbeDistances(uint64_t n);
  void RecordBoundSeed();

  // Test/introspection accessors (mirrors of the obs counters).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t bound_seeds() const;
  uint64_t invalidations() const;
  uint64_t evictions() const;
  uint64_t probe_distances() const;

  const Options& options() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// One cache probe's outcome, threaded from Lookup to Fill.
struct CacheProbe {
  /// The cache was on and this request was probed at all.
  bool eligible = false;
  /// `cached` holds a verbatim prior response for this exact request.
  bool hit = false;
  /// `bound` tightens the request's initial_radius_bound.
  bool bound_seeded = false;
  double bound = std::numeric_limits<double>::infinity();
  net::WireSearchResponse cached;
  core::Permutation perm;
  std::vector<double> site_distances;
  std::string full_key;
  std::string prefix_key;
  /// Metric evaluations this probe itself spent (== site count).
  uint64_t probe_distance_computations = 0;
};

/// Key builders (exposed for tests).
std::string PermCacheFullKey(const core::Permutation& perm,
                             const std::string& request_bytes);
std::string PermCachePrefixKey(const core::Permutation& perm,
                               size_t prefix_length, uint8_t mode,
                               uint64_t k);

template <typename P>
class PermCache {
 public:
  using Options = PermCacheStore::Options;

  PermCache(metric::Metric<P> metric, const Options& options)
      : metric_(std::move(metric)), store_(options) {}

  /// Fixes the cache's sites.  Call once at server start; fewer than
  /// two sites (or zero capacity) leaves the cache disabled.
  void SetSites(std::vector<P> sites) {
    DP_CHECK(sites.size() <= core::kMaxSites);
    sites_ = std::move(sites);
  }

  bool enabled() const {
    return sites_.size() >= 2 && store_.options().capacity > 0;
  }
  size_t site_count() const { return sites_.size(); }

  /// Probes both tables for `request`.  `bounds_allowed` lets the
  /// caller veto the bound path per request (the server turns it off
  /// for approximate index specs, where initial_radius_bound tightening
  /// is not exactness-preserving in spirit even though it is in math).
  CacheProbe Lookup(const index::SearchRequest<P>& request,
                    const CacheTags& tags, bool bounds_allowed = true) {
    CacheProbe probe;
    if (!enabled()) return probe;
    probe.eligible = true;
    probe.site_distances.reserve(sites_.size());
    for (const P& site : sites_) {
      probe.site_distances.push_back(metric_(site, request.point));
    }
    probe.probe_distance_computations = sites_.size();
    store_.RecordProbeDistances(probe.probe_distance_computations);
    probe.perm = core::PermutationFromDistances(probe.site_distances);

    std::string request_bytes;
    net::EncodeSearchRequest(&request_bytes, request);
    probe.full_key = PermCacheFullKey(probe.perm, request_bytes);
    if (store_.LookupAnswer(probe.full_key, tags, &probe.cached)) {
      probe.hit = true;
      return probe;
    }

    if (BoundEligible(request)) {
      probe.prefix_key =
          PermCachePrefixKey(probe.perm, store_.options().prefix_length,
                             static_cast<uint8_t>(request.mode), request.k);
      if (bounds_allowed && store_.options().enable_bounds) {
        double kth = 0.0;
        std::vector<double> cached_distances;
        if (store_.LookupBound(probe.prefix_key, tags, &kth,
                               &cached_distances) &&
            cached_distances.size() == probe.site_distances.size()) {
          double via_site = std::numeric_limits<double>::infinity();
          for (size_t i = 0; i < cached_distances.size(); ++i) {
            const double candidate =
                probe.site_distances[i] + cached_distances[i];
            if (candidate < via_site) via_site = candidate;
          }
          const double bound = kth + via_site;
          if (bound < request.initial_radius_bound) {
            probe.bound_seeded = true;
            probe.bound = bound;
            store_.RecordBoundSeed();
          }
        }
      }
    }
    return probe;
  }

  /// Stores an executed response under the probe's keys.  A bound entry
  /// is only written when the response proves a k-th distance: exactly
  /// k results and no truncation.
  void Fill(const CacheProbe& probe, const index::SearchRequest<P>& request,
            const net::WireSearchResponse& response, const CacheTags& tags) {
    if (!probe.eligible || probe.hit) return;
    if (!response.status.ok()) return;
    store_.FillAnswer(probe.full_key, response, tags);
    if (!probe.prefix_key.empty() && !response.truncated &&
        response.results.size() == request.k && request.k > 0) {
      store_.FillBound(probe.prefix_key, response.results.back().distance,
                       probe.site_distances, tags);
    }
  }

  PermCacheStore& store() { return store_; }
  const PermCacheStore& store() const { return store_; }

 private:
  /// The bound path only applies to unbudgeted kNN: a budget makes the
  /// baseline truncation-sensitive, and range queries have no k-th
  /// distance to seed from.
  static bool BoundEligible(const index::SearchRequest<P>& request) {
    return request.mode == index::SearchMode::kKnn && request.k > 0 &&
           request.max_distance_computations == 0;
  }

  metric::Metric<P> metric_;
  std::vector<P> sites_;
  PermCacheStore store_;
};

}  // namespace server
}  // namespace distperm

#endif  // DISTPERM_SERVER_PERM_CACHE_H_
