#include "dataset/io.h"

#include <fstream>
#include <sstream>

namespace distperm {
namespace dataset {

using util::Result;
using util::Status;

Status WriteVectors(const std::string& path,
                    const std::vector<metric::Vector>& points) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  size_t d = points.empty() ? 0 : points[0].size();
  out << points.size() << " " << d << "\n";
  out.precision(17);
  for (const auto& point : points) {
    if (point.size() != d) {
      return Status::InvalidArgument("inconsistent dimensions");
    }
    for (size_t i = 0; i < point.size(); ++i) {
      if (i > 0) out << " ";
      out << point[i];
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<metric::Vector>> ReadVectors(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  size_t n = 0, d = 0;
  if (!(in >> n >> d)) return Status::IoError("bad header in " + path);
  std::vector<metric::Vector> points(n, metric::Vector(d));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      if (!(in >> points[i][j])) {
        std::ostringstream msg;
        msg << "truncated data at point " << i << " in " << path;
        return Status::IoError(msg.str());
      }
    }
  }
  return points;
}

Status WriteStrings(const std::string& path,
                    const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& line : lines) {
    if (line.find('\n') != std::string::npos) {
      return Status::InvalidArgument("string contains a newline");
    }
    out << line << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<std::string>> ReadStrings(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

}  // namespace dataset
}  // namespace distperm
