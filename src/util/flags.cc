#include "util/flags.h"

#include <cstdlib>

namespace distperm {
namespace util {

Result<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      // Bare "--": everything after is positional.
      for (int j = i + 1; j < argc; ++j) flags.positional_.push_back(argv[j]);
      break;
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("malformed flag: " + arg);
      }
      flags.values_[name] = body.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag; otherwise a
    // boolean `--name`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[body] = argv[i + 1];
      ++i;
    } else {
      flags.values_[body] = "";
    }
  }
  return flags;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  long long value = std::strtoll(it->second.c_str(), &end, 10);
  DP_CHECK_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" << name << " is not an integer: " << it->second);
  return static_cast<int64_t>(value);
}

double Flags::GetDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  double value = std::strtod(it->second.c_str(), &end);
  DP_CHECK_MSG(end != nullptr && *end == '\0' && !it->second.empty(),
               "flag --" << name << " is not a number: " << it->second);
  return value;
}

bool Flags::GetBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes";
}

std::vector<std::string> Flags::Names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, _] : values_) names.push_back(name);
  return names;
}

}  // namespace util
}  // namespace distperm
