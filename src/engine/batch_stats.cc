#include "engine/batch_stats.h"

#include <algorithm>
#include <unordered_set>

#include "util/status.h"

namespace distperm {
namespace engine {

LatencySummary SummarizeLatencies(std::vector<double> seconds) {
  LatencySummary summary;
  if (seconds.empty()) return summary;
  std::sort(seconds.begin(), seconds.end());
  summary.count = seconds.size();
  summary.min_seconds = seconds.front();
  summary.max_seconds = seconds.back();
  double total = 0.0;
  for (double s : seconds) total += s;
  summary.mean_seconds = total / static_cast<double>(seconds.size());
  size_t p99_rank = (seconds.size() * 99 + 99) / 100;  // ceil(0.99 n)
  summary.p99_seconds = seconds[std::min(p99_rank, seconds.size()) - 1];
  return summary;
}

double AverageRecall(
    const std::vector<std::vector<index::SearchResult>>& actual,
    const std::vector<std::vector<index::SearchResult>>& truth) {
  DP_CHECK(actual.size() == truth.size());
  if (truth.empty()) return 1.0;
  double total = 0.0;
  for (size_t q = 0; q < truth.size(); ++q) {
    if (truth[q].empty()) {
      total += 1.0;
      continue;
    }
    std::unordered_set<size_t> found;
    found.reserve(actual[q].size());
    for (const auto& r : actual[q]) found.insert(r.id);
    size_t hits = 0;
    for (const auto& t : truth[q]) hits += found.count(t.id);
    total += static_cast<double>(hits) / static_cast<double>(truth[q].size());
  }
  return total / static_cast<double>(truth.size());
}

}  // namespace engine
}  // namespace distperm
