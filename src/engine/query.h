// Batch query descriptions for the concurrent engine.
//
// A batch is a vector of QuerySpec — which is exactly
// index::SearchRequest: the engine and the index layer share one typed
// request object, so every index-layer scenario (kNN, range,
// kNN-within-radius, distance budgets, per-request candidate fractions)
// is available in batches with no engine-side mirroring.  Results come
// back in batch order with global database ids, so callers never see
// the sharding.
//
// QueryType survives as an alias of index::SearchMode for existing
// callers (QueryType::kKnn / QueryType::kRange keep compiling).

#ifndef DISTPERM_ENGINE_QUERY_H_
#define DISTPERM_ENGINE_QUERY_H_

#include "index/search.h"

namespace distperm {
namespace engine {

/// Alias of index::SearchMode (kKnn, kRange, kKnnWithinRadius).
using QueryType = index::SearchMode;

/// One query in a batch: an index::SearchRequest.  Construct with the
/// factories — QuerySpec<P>::Knn(point, k), ::Range(point, radius),
/// ::KnnWithinRadius(point, k, radius) — and the With* knob setters.
template <typename P>
using QuerySpec = index::SearchRequest<P>;

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_QUERY_H_
