// Tests for sampling/grid cell enumeration and bisector sign vectors.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/euclidean_count.h"
#include "core/perm_codec.h"
#include "geometry/bisector.h"
#include "metric/lp.h"
#include "geometry/cell_enum.h"
#include "util/rng.h"

namespace distperm {
namespace geometry {
namespace {

using metric::Vector;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CellEnum, TwoSitesTwoCells) {
  std::vector<Vector> sites = {{0.25, 0.5}, {0.75, 0.5}};
  auto grid = EnumerateCellsByGrid(sites, 2.0, 0.0, 1.0, 33);
  EXPECT_EQ(grid.count(), 2u);
  util::Rng rng(1);
  auto sampled = EnumerateCellsBySampling(sites, 2.0, 0.0, 1.0, 2000, &rng);
  EXPECT_EQ(sampled.count(), 2u);
}

TEST(CellEnum, OneSiteOneCell) {
  std::vector<Vector> sites = {{0.5, 0.5}};
  auto grid = EnumerateCellsByGrid(sites, 1.0, 0.0, 1.0, 9);
  EXPECT_EQ(grid.count(), 1u);
  EXPECT_EQ(grid.probes, 81u);
}

TEST(CellEnum, PaperFig3EuclideanEighteenCells) {
  // Four generic planar sites under L2 give exactly 18 permutations.
  // The window must be wide enough to reach the outermost unbounded
  // cells but fine enough to resolve the slivers near the sites.
  std::vector<Vector> sites = {
      {0.1, 0.15}, {0.75, 0.3}, {0.35, 0.8}, {0.9, 0.85}};
  auto cells = EnumerateCellsByGrid(sites, 2.0, -2.5, 3.5, 500);
  EXPECT_EQ(cells.count(), 18u);
}

TEST(CellEnum, PaperFig4L1DiffersFromL2) {
  // The same sites under L1 give a comparable count, but not the same
  // set of permutations — the paper's Fig. 3 vs Fig. 4 observation.
  std::vector<Vector> sites = {
      {0.1, 0.15}, {0.75, 0.3}, {0.35, 0.8}, {0.9, 0.85}};
  auto l2 = EnumerateCellsByGrid(sites, 2.0, -2.5, 3.5, 500);
  auto l1 = EnumerateCellsByGrid(sites, 1.0, -2.5, 3.5, 500);
  EXPECT_EQ(l2.count(), 18u);
  EXPECT_GE(l1.count(), 14u);
  EXPECT_LE(l1.count(), 24u);  // k! = 24 hard cap
  auto only_l2 = PermutationSetDifference(l2.permutation_ranks,
                                          l1.permutation_ranks);
  EXPECT_FALSE(only_l2.empty());
}

TEST(CellEnum, GridAndSamplingAgreeOnSimpleConfig) {
  std::vector<Vector> sites = {{0.2, 0.2}, {0.8, 0.2}, {0.5, 0.9}};
  auto grid = EnumerateCellsByGrid(sites, 2.0, -1.0, 2.0, 300);
  util::Rng rng(7);
  auto sampled =
      EnumerateCellsBySampling(sites, 2.0, -1.0, 2.0, 200000, &rng);
  EXPECT_EQ(grid.permutation_ranks, sampled.permutation_ranks);
  EXPECT_EQ(grid.count(), 6u);  // N_{2,2}(3) = 6
}

TEST(CellEnum, CountsNeverExceedFactorial) {
  util::Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Vector> sites(4, Vector(2));
    for (auto& site : sites) {
      for (auto& coord : site) coord = rng.NextDouble();
    }
    for (double p : {1.0, 2.0, kInf}) {
      auto cells = EnumerateCellsByGrid(sites, p, 0.0, 1.0, 64);
      EXPECT_LE(cells.count(), 24u);
    }
  }
}

TEST(CellEnum, PaperCounterexampleExceedsEuclideanLimit) {
  // Paper equation (12): five sites in 3-dimensional L1 space realising
  // 108 > N_{3,2}(5) = 96 distance permutations inside the unit cube.
  std::vector<Vector> sites = {
      {0.205281, 0.621547, 0.332507},
      {0.053421, 0.344351, 0.260859},
      {0.418166, 0.207143, 0.119789},
      {0.735218, 0.653301, 0.650154},
      {0.527133, 0.814207, 0.704307},
  };
  core::EuclideanCounter counter;
  ASSERT_EQ(counter.Count64(3, 5), 96u);
  auto cells = EnumerateCellsByGrid(sites, 1.0, 0.0, 1.0, 120);
  EXPECT_GT(cells.count(), 96u);
  EXPECT_LE(cells.count(), 120u);  // 5! = 120 hard cap
}

TEST(SetDifference, Works) {
  std::vector<uint64_t> a = {1, 3, 5, 7};
  std::vector<uint64_t> b = {3, 4, 7};
  EXPECT_EQ(PermutationSetDifference(a, b), (std::vector<uint64_t>{1, 5}));
  EXPECT_EQ(PermutationSetDifference(b, a), (std::vector<uint64_t>{4}));
}

// --------------------------------------------------------- sign vectors

TEST(Bisector, SideMatchesDistances) {
  Vector x = {0.0, 0.0};
  Vector y = {2.0, 0.0};
  EXPECT_EQ(BisectorSide(x, y, {0.5, 0.3}, 2.0), -1);
  EXPECT_EQ(BisectorSide(x, y, {1.5, -0.2}, 2.0), 1);
  EXPECT_EQ(BisectorSide(x, y, {1.0, 5.0}, 2.0), 0);
}

TEST(Bisector, SignVectorConsistentWithPermutation) {
  // The sign vector derived from geometry must equal the sign vector
  // implied by the distance permutation — the Section 2 correspondence.
  util::Rng rng(9);
  for (double p : {1.0, 2.0, kInf}) {
    for (int trial = 0; trial < 20; ++trial) {
      size_t k = 3 + rng.NextBounded(4);
      std::vector<Vector> sites(k, Vector(3));
      for (auto& site : sites) {
        for (auto& coord : site) coord = rng.NextDouble();
      }
      Vector probe(3);
      for (auto& coord : probe) coord = rng.NextDouble();
      std::vector<double> distances(k);
      for (size_t i = 0; i < k; ++i) {
        distances[i] = metric::LpDistance(sites[i], probe, p);
      }
      auto perm = core::PermutationFromDistances(distances);
      EXPECT_EQ(SignVector(sites, probe, p),
                SignVectorFromPermutation(perm));
    }
  }
}

TEST(Bisector, SignVectorFromPermutationKnown) {
  // perm (1,0,2): site 1 closest.  Pairs (0,1),(0,2),(1,2):
  // 0 after 1 -> +1; 0 before 2 -> -1; 1 before 2 -> -1.
  EXPECT_EQ(SignVectorFromPermutation({1, 0, 2}),
            (std::vector<int>{1, -1, -1}));
  EXPECT_EQ(SignVectorFromPermutation({0, 1, 2}),
            (std::vector<int>{-1, -1, -1}));
}

TEST(Bisector, DistinctPermutationsGiveDistinctSignVectors) {
  // Injectivity claim used by Theorem 4's proof.
  core::Permutation perm = {0, 1, 2, 3};
  std::vector<std::vector<int>> seen;
  do {
    auto sv = SignVectorFromPermutation(perm);
    EXPECT_EQ(std::find(seen.begin(), seen.end(), sv), seen.end());
    seen.push_back(sv);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(seen.size(), 24u);
}

}  // namespace
}  // namespace geometry
}  // namespace distperm
