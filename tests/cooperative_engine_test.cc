// Cooperative cross-shard kNN pruning, split distance budgets, and
// parallel shard construction.
//
// The contracts pinned here: (1) cooperative scheduling (shared k-th
// distance bound, optionally seed-shard-first) returns merged results
// bit-identical to the independent fan-out — and to a single exact
// index — while never increasing the batch's total distance
// computations; (2) split_distance_budget bounds a budgeted query's
// total cost by the budget, not shards x budget; (3) parallel builds
// are deterministic: (data, spec, shard_count, seed) fixes the database
// bit-for-bit no matter how many build threads run; (4) the vectorized
// AESA matrix build matches the scalar pairwise loop bit-exactly;
// (5) a valid initial_radius_bound hint keeps results identical while
// only ever removing distance computations.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/aesa.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/rng.h"

namespace distperm {
namespace engine {
namespace {

using index::LinearScanIndex;
using index::SearchRequest;
using index::SearchResult;
using index::ShardScheduling;
using metric::Metric;
using metric::Vector;

Metric<Vector> L2() { return metric::LpMetric::L2(); }

std::vector<QuerySpec<Vector>> KnnBatch(size_t count, size_t dim, size_t k,
                                        util::Rng* rng) {
  std::vector<QuerySpec<Vector>> batch;
  for (size_t q = 0; q < count; ++q) {
    Vector point(dim);
    for (double& c : point) c = rng->NextDouble();
    batch.push_back(QuerySpec<Vector>::Knn(point, k));
  }
  return batch;
}

/// Queries drawn near database points: the regime where a k-th-distance
/// bound has real pruning power (a uniform high-dimensional workload
/// defeats every metric index, bound or no bound).
std::vector<QuerySpec<Vector>> NearDataKnnBatch(
    const std::vector<Vector>& data, size_t count, size_t k,
    util::Rng* rng) {
  std::vector<QuerySpec<Vector>> batch;
  for (size_t q = 0; q < count; ++q) {
    Vector point = data[rng->NextBounded(data.size())];
    for (double& c : point) c += rng->NextDouble(-0.005, 0.005);
    batch.push_back(QuerySpec<Vector>::Knn(point, k));
  }
  return batch;
}

std::vector<QuerySpec<Vector>> WithScheduling(
    std::vector<QuerySpec<Vector>> batch, ShardScheduling policy) {
  for (auto& spec : batch) spec.shard_scheduling = policy;
  return batch;
}

uint64_t TotalDistances(
    const typename QueryEngine<Vector>::BatchOutput& out) {
  return out.stats.distance_computations;
}

TEST(SharedSearchBound, StartsUnboundedAndOnlyDecreases) {
  index::SharedSearchBound bound;
  EXPECT_EQ(bound.Load(), std::numeric_limits<double>::infinity());
  bound.UpdateMin(3.0);
  EXPECT_EQ(bound.Load(), 3.0);
  bound.UpdateMin(5.0);  // larger: no effect
  EXPECT_EQ(bound.Load(), 3.0);
  bound.UpdateMin(1.5);
  EXPECT_EQ(bound.Load(), 1.5);
  bound.Reset();
  EXPECT_EQ(bound.Load(), std::numeric_limits<double>::infinity());
  // Padded to a cache line so engine bound arrays never false-share.
  EXPECT_EQ(sizeof(index::SharedSearchBound) % 64, 0u);
}

TEST(SharedSearchBound, ConcurrentUpdatesKeepTheMinimum) {
  index::SharedSearchBound bound;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&bound, t]() {
      for (int i = 999; i >= 0; --i) {
        bound.UpdateMin(static_cast<double>(i * 4 + t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(bound.Load(), 0.0);
}

// The tentpole contract: cooperative scheduling changes which distances
// are evaluated, never which neighbours come back.  Merged results must
// be bit-identical to the independent fan-out and to a single exact
// index, across index types, shard counts, thread counts, and seeds.
TEST(CooperativePruning, MergedResultsBitIdenticalToIndependent) {
  const std::vector<std::string> specs = {"linear-scan", "vp-tree",
                                          "laesa:k=6", "aesa"};
  for (uint64_t seed : {1u, 2u, 3u}) {
    util::Rng rng(4000 + seed);
    auto data = dataset::UniformCube(360, 4, &rng);
    auto batch = KnnBatch(10, 4, 7, &rng);
    // A couple of non-uniform k values and one range query (policies
    // must leave range untouched).
    batch[1].k = 1;
    batch[2].k = 23;
    batch.push_back(QuerySpec<Vector>::Range(batch[0].point, 0.3));

    LinearScanIndex<Vector> scan(data, L2());
    std::vector<std::vector<SearchResult>> truth;
    for (const auto& spec : batch) {
      truth.push_back(spec.mode == QueryType::kRange
                          ? scan.RangeQuery(spec.point, spec.radius)
                          : scan.KnnQuery(spec.point, spec.k));
    }

    for (const std::string& spec : specs) {
      for (size_t shards : {1u, 2u, 5u, 8u}) {
        auto built = ShardedDatabase<Vector>::BuildFromRegistry(
            data, L2(), shards, spec, seed);
        ASSERT_TRUE(built.ok()) << spec;
        const ShardedDatabase<Vector>& db = built.value();
        for (size_t threads : {1u, 4u}) {
          QueryEngine<Vector> engine(&db, threads);
          for (ShardScheduling policy :
               {ShardScheduling::kCooperative, ShardScheduling::kSeedFirst}) {
            auto out = engine.RunBatch(WithScheduling(batch, policy));
            ASSERT_TRUE(out.all_ok());
            for (size_t q = 0; q < batch.size(); ++q) {
              EXPECT_EQ(out.results[q], truth[q])
                  << spec << " shards=" << shards << " threads=" << threads
                  << " policy=" << index::ShardSchedulingName(policy)
                  << " query=" << q << " seed=" << seed;
            }
          }
        }
      }
    }
  }
}

TEST(CooperativePruning, StringsUnderLevenshtein) {
  util::Rng rng(88);
  auto words = dataset::DnaSequences(150, 4, 6, 16, 0.1, &rng);
  Metric<std::string> lev((metric::LevenshteinMetric()));
  std::vector<QuerySpec<std::string>> batch;
  for (int q = 0; q < 8; ++q) {
    batch.push_back(QuerySpec<std::string>::Knn(
        words[rng.NextBounded(words.size())], 5));
    batch.back().shard_scheduling = q % 2 == 0
                                        ? ShardScheduling::kCooperative
                                        : ShardScheduling::kSeedFirst;
  }
  LinearScanIndex<std::string> scan(words, lev);
  auto built = ShardedDatabase<std::string>::BuildFromRegistry(
      words, lev, 5, "vp-tree", 9);
  ASSERT_TRUE(built.ok());
  QueryEngine<std::string> engine(&built.value(), 4);
  auto out = engine.RunBatch(batch);
  ASSERT_TRUE(out.all_ok());
  for (size_t q = 0; q < batch.size(); ++q) {
    EXPECT_EQ(out.results[q], scan.KnnQuery(batch[q].point, batch[q].k))
        << q;
  }
}

// The perf contract: sharing the bound can only remove work.  With a
// single engine thread the execution is deterministic (shard tasks run
// in submission order), so the comparison is exact; pruning indexes
// must show a real reduction at high shard counts, where the naive
// fan-out repeats the pruning-free startup cost per shard.
TEST(CooperativePruning, NeverIncreasesTotalDistanceComputations) {
  util::Rng rng(55);
  auto data = dataset::ClusteredCloud(960, 16, 16, 0.01, &rng);
  auto batch = NearDataKnnBatch(data, 16, 10, &rng);
  const std::vector<std::string> pruning_specs = {"vp-tree", "laesa:k=8",
                                                  "aesa"};
  for (const std::string& spec : pruning_specs) {
    for (size_t shards : {4u, 8u}) {
      auto built = ShardedDatabase<Vector>::BuildFromRegistry(
          data, L2(), shards, spec, 7);
      ASSERT_TRUE(built.ok()) << spec;
      QueryEngine<Vector> engine(&built.value(), 1);
      const uint64_t naive = TotalDistances(engine.RunBatch(
          WithScheduling(batch, ShardScheduling::kIndependent)));
      const uint64_t cooperative = TotalDistances(engine.RunBatch(
          WithScheduling(batch, ShardScheduling::kCooperative)));
      const uint64_t seed_first = TotalDistances(engine.RunBatch(
          WithScheduling(batch, ShardScheduling::kSeedFirst)));
      EXPECT_LE(cooperative, naive) << spec << " shards=" << shards;
      EXPECT_LE(seed_first, naive) << spec << " shards=" << shards;
      if (shards == 8) {
        // At 8 shards the pruning indexes must save at least 20%.
        EXPECT_LT(cooperative, naive - naive / 5)
            << spec << ": cooperative=" << cooperative
            << " naive=" << naive;
        EXPECT_LT(seed_first, naive - naive / 5)
            << spec << ": seed_first=" << seed_first << " naive=" << naive;
      }
    }
  }
}

// Multi-threaded cooperative runs have scheduling-dependent distance
// counts (documented in query_engine.h; the deterministic 1-thread
// test above gates the saving), but results must stay exact whatever
// the interleaving — the bound is only ever a valid over-estimate of
// the global k-th distance.
TEST(CooperativePruning, ConcurrentCooperativeRunsStayExact) {
  util::Rng rng(56);
  auto data = dataset::ClusteredCloud(960, 16, 16, 0.01, &rng);
  auto batch = NearDataKnnBatch(data, 16, 10, &rng);
  const std::vector<std::string> pruning_specs = {"vp-tree", "laesa:k=8"};
  for (const std::string& spec : pruning_specs) {
    auto built = ShardedDatabase<Vector>::BuildFromRegistry(data, L2(), 8,
                                                            spec, 7);
    ASSERT_TRUE(built.ok()) << spec;
    QueryEngine<Vector> engine(&built.value(), 4);
    const auto naive = engine.RunBatch(
        WithScheduling(batch, ShardScheduling::kIndependent));
    for (int round = 0; round < 3; ++round) {
      const auto cooperative = engine.RunBatch(
          WithScheduling(batch, ShardScheduling::kCooperative));
      EXPECT_EQ(cooperative.results, naive.results)
          << spec << " round=" << round;
    }
  }
}

TEST(SplitBudget, TotalCostBoundedByTheBudgetItself) {
  util::Rng rng(57);
  const size_t n = 240;
  auto data = dataset::UniformCube(n, 2, &rng);
  const size_t shards = 3;
  auto built = ShardedDatabase<Vector>::BuildFromRegistry(
      data, L2(), shards, "linear-scan", 7);
  ASSERT_TRUE(built.ok());
  QueryEngine<Vector> engine(&built.value(), 2);

  const uint64_t budget = 20;
  std::vector<QuerySpec<Vector>> batch = {
      // Split: the engine ceil-divides (7, 7, 6) and the total cost is
      // exactly the budget.
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3)
          .WithDistanceBudget(budget)
          .WithSplitDistanceBudget(),
      // Naive (default): every shard gets the full budget.
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3).WithDistanceBudget(budget),
      // Split budget below the shard count: starved shards spend
      // nothing and the total still equals the budget.
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3)
          .WithDistanceBudget(2)
          .WithSplitDistanceBudget(),
      // Split budget large enough for every slice: exact answer, no
      // truncation, exact n evaluations.
      QuerySpec<Vector>::Knn({0.4, 0.4}, 3)
          .WithDistanceBudget(10 * n)
          .WithSplitDistanceBudget(),
  };
  auto out = engine.RunBatch(batch);
  ASSERT_TRUE(out.all_ok());
  EXPECT_EQ(out.per_query_distance_computations[0], budget);
  EXPECT_TRUE(out.truncated[0]);
  EXPECT_EQ(out.per_query_distance_computations[1], budget * shards);
  EXPECT_TRUE(out.truncated[1]);
  EXPECT_EQ(out.per_query_distance_computations[2], 2u);
  EXPECT_TRUE(out.truncated[2]);
  EXPECT_EQ(out.per_query_distance_computations[3], n);
  EXPECT_FALSE(out.truncated[3]);
  LinearScanIndex<Vector> scan(data, L2());
  EXPECT_EQ(out.results[3], scan.KnnQuery({0.4, 0.4}, 3));
}

// (data, spec, shard_count, seed) pins the database bit-for-bit: the
// number of build threads may only change how fast it is built.
TEST(ParallelBuild, RegistryBuildsAreDeterministicAcrossThreadCounts) {
  util::Rng rng(58);
  auto data = dataset::UniformCube(320, 8, &rng);
  auto batch = KnnBatch(8, 8, 6, &rng);
  const std::vector<std::string> specs = {
      "vp-tree", "gh-tree", "laesa:k=6", "aesa",
      "distperm:k=6,fraction=0.3"};
  for (const std::string& spec : specs) {
    for (size_t shards : {3u, 5u}) {
      auto serial = ShardedDatabase<Vector>::BuildFromRegistry(
          data, L2(), shards, spec, 11, /*build_threads=*/1);
      auto parallel = ShardedDatabase<Vector>::BuildFromRegistry(
          data, L2(), shards, spec, 11, /*build_threads=*/4);
      ASSERT_TRUE(serial.ok() && parallel.ok()) << spec;
      EXPECT_EQ(serial.value().IndexBits(), parallel.value().IndexBits())
          << spec;
      EXPECT_EQ(serial.value().build_distance_computations(),
                parallel.value().build_distance_computations())
          << spec;
      QueryEngine<Vector> serial_engine(&serial.value(), 1);
      QueryEngine<Vector> parallel_engine(&parallel.value(), 1);
      auto a = serial_engine.RunBatch(batch);
      auto b = parallel_engine.RunBatch(batch);
      EXPECT_EQ(a.results, b.results) << spec << " shards=" << shards;
      EXPECT_EQ(a.per_query_distance_computations,
                b.per_query_distance_computations)
          << spec << " shards=" << shards;
    }
  }
}

TEST(ParallelBuild, FactoryPathBuildsConcurrentlyAndSlicesByMove) {
  util::Rng rng(59);
  auto data = dataset::UniformCube(103, 2, &rng);  // not divisible by 4
  auto factory = [](std::vector<Vector> shard_data,
                    const Metric<Vector>& metric, size_t) {
    return std::make_unique<LinearScanIndex<Vector>>(std::move(shard_data),
                                                     metric);
  };
  // Moved-in data slices by element moves; the shards must still cover
  // every point in order, identically to a copied build.
  std::vector<Vector> copy = data;
  auto moved =
      ShardedDatabase<Vector>::Build(std::move(copy), L2(), 4, factory,
                                     /*build_threads=*/4);
  auto copied = ShardedDatabase<Vector>::Build(data, L2(), 4, factory);
  ASSERT_EQ(moved.shard_count(), 4u);
  EXPECT_EQ(moved.size(), data.size());
  size_t covered = 0;
  for (size_t s = 0; s < moved.shard_count(); ++s) {
    EXPECT_EQ(moved.shard_offset(s), covered);
    EXPECT_EQ(moved.shard(s).size(), copied.shard(s).size());
    for (size_t i = 0; i < moved.shard(s).size(); ++i) {
      EXPECT_EQ(moved.shard(s).data()[i], data[covered + i]);
    }
    covered += moved.shard(s).size();
  }
  EXPECT_EQ(covered, data.size());
}

// The block-kernel AESA matrix build must be bit-identical to the
// scalar pairwise loop (the same contract the flat-path tests pin for
// LAESA's pivot table).
TEST(VectorizedBuild, AesaMatrixMatchesScalarMetricBuild) {
  util::Rng rng(60);
  auto data = dataset::UniformCube(120, 8, &rng);
  Metric<Vector> tagged(metric::LpMetric::L2());
  Metric<Vector> untagged(tagged.name(),
                          [tagged](const Vector& a, const Vector& b) {
                            return tagged(a, b);
                          });
  index::AesaIndex<Vector> flat(data, tagged);
  index::AesaIndex<Vector> scalar(data, untagged);
  EXPECT_EQ(flat.build_distance_computations(),
            scalar.build_distance_computations());
  EXPECT_EQ(flat.build_distance_computations(),
            data.size() * (data.size() - 1) / 2);
  for (size_t i = 0; i < data.size(); ++i) {
    for (size_t j = 0; j < data.size(); ++j) {
      ASSERT_EQ(flat.StoredDistance(i, j), scalar.StoredDistance(i, j))
          << i << "," << j;
    }
  }
  util::Rng query_rng(61);
  for (int q = 0; q < 6; ++q) {
    Vector point(8);
    for (double& c : point) c = query_rng.NextDouble();
    EXPECT_EQ(flat.KnnQuery(point, 5), scalar.KnnQuery(point, 5));
  }
}

// A valid upper bound on the k-th distance keeps results identical and
// only ever removes metric evaluations; a bogus bound is rejected.
TEST(InitialRadiusBound, ValidHintIsExactAndNeverCostsMore) {
  util::Rng rng(62);
  auto data = dataset::UniformCube(400, 6, &rng);
  LinearScanIndex<Vector> scan(data, L2());
  util::Rng laesa_rng(63), vp_rng(64);
  index::LaesaIndex<Vector> laesa(data, L2(), 8, &laesa_rng);
  index::VpTreeIndex<Vector> vp(data, L2(), &vp_rng);
  const index::SearchIndex<Vector>* indexes[] = {&laesa, &vp};

  uint64_t plain_total = 0;
  uint64_t hinted_total = 0;
  for (int q = 0; q < 12; ++q) {
    Vector point(6);
    for (double& c : point) c = rng.NextDouble();
    const auto truth = scan.KnnQuery(point, 10);
    const double kth = truth.back().distance;
    for (const auto* index : indexes) {
      auto plain = index->Search(SearchRequest<Vector>::Knn(point, 10));
      auto hinted = index->Search(SearchRequest<Vector>::Knn(point, 10)
                                      .WithInitialRadiusBound(kth));
      ASSERT_TRUE(plain.status.ok() && hinted.status.ok());
      EXPECT_EQ(hinted.results, plain.results) << index->name() << " " << q;
      EXPECT_EQ(hinted.results, truth) << index->name() << " " << q;
      EXPECT_LE(hinted.stats.distance_computations,
                plain.stats.distance_computations)
          << index->name() << " " << q;
      plain_total += plain.stats.distance_computations;
      hinted_total += hinted.stats.distance_computations;
    }
  }
  // Across the workload the hint must actually prune.
  EXPECT_LT(hinted_total, plain_total);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(laesa.Search(SearchRequest<Vector>::Knn(data[0], 3)
                             .WithInitialRadiusBound(nan))
                .status.code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(laesa.Search(SearchRequest<Vector>::Knn(data[0], 3)
                             .WithInitialRadiusBound(-0.5))
                .status.code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace engine
}  // namespace distperm
