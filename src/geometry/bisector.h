// Bisector predicates (paper Definition 1 and Section 2).
//
// The bisector x|y of two points is the locus where d(x,z) = d(y,z).  A
// point's position relative to all C(k,2) bisectors — its sign vector —
// determines its distance permutation, and distinct sign vectors map to
// distinct permutations.  These predicates drive the cell-enumeration
// experiments and the sign-vector consistency tests.

#ifndef DISTPERM_GEOMETRY_BISECTOR_H_
#define DISTPERM_GEOMETRY_BISECTOR_H_

#include <cstdint>
#include <vector>

#include "core/distance_permutation.h"
#include "metric/metric.h"

namespace distperm {
namespace geometry {

/// Which side of the bisector x|y the probe z lies on: -1 if z is
/// strictly nearer x, +1 if strictly nearer y, 0 if on the bisector.
int BisectorSide(const metric::Vector& x, const metric::Vector& y,
                 const metric::Vector& z, double p);

/// The sign vector of `z` with respect to all site pairs (i, j), i < j,
/// in lexicographic pair order, applying the paper's tie-break (a tie
/// counts as "nearer the lower-indexed site", i.e. -1).
std::vector<int> SignVector(const std::vector<metric::Vector>& sites,
                            const metric::Vector& z, double p);

/// The sign vector implied by a distance permutation: entry for pair
/// (i, j) is -1 iff site i precedes site j in the permutation.
std::vector<int> SignVectorFromPermutation(const core::Permutation& perm);

}  // namespace geometry
}  // namespace distperm

#endif  // DISTPERM_GEOMETRY_BISECTOR_H_
