#include "geometry/cell_enum.h"

#include <algorithm>
#include <unordered_set>

#include "core/perm_codec.h"
#include "metric/lp.h"
#include "util/status.h"

namespace distperm {
namespace geometry {
namespace {

uint64_t ProbePermutationRank(const std::vector<metric::Vector>& sites,
                              double p, const metric::Vector& point) {
  std::vector<double> distances(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    distances[i] = metric::LpDistance(sites[i], point, p);
  }
  return core::RankPermutation(core::PermutationFromDistances(distances));
}

CellEnumeration FinishEnumeration(std::unordered_set<uint64_t> seen,
                                  uint64_t probes) {
  CellEnumeration out;
  out.permutation_ranks.assign(seen.begin(), seen.end());
  std::sort(out.permutation_ranks.begin(), out.permutation_ranks.end());
  out.probes = probes;
  return out;
}

}  // namespace

CellEnumeration EnumerateCellsByGrid(const std::vector<metric::Vector>& sites,
                                     double p, double lo, double hi,
                                     size_t resolution) {
  DP_CHECK(!sites.empty());
  DP_CHECK(resolution >= 2);
  DP_CHECK(hi > lo);
  const size_t d = sites[0].size();
  DP_CHECK_MSG(d >= 1 && d <= 6, "grid enumeration limited to d <= 6");

  uint64_t total = 1;
  for (size_t i = 0; i < d; ++i) total *= resolution;

  std::unordered_set<uint64_t> seen;
  metric::Vector point(d);
  std::vector<size_t> idx(d, 0);
  const double step = (hi - lo) / static_cast<double>(resolution - 1);
  for (uint64_t probe = 0; probe < total; ++probe) {
    for (size_t i = 0; i < d; ++i) {
      point[i] = lo + step * static_cast<double>(idx[i]);
    }
    seen.insert(ProbePermutationRank(sites, p, point));
    // Odometer increment.
    for (size_t i = 0; i < d; ++i) {
      if (++idx[i] < resolution) break;
      idx[i] = 0;
    }
  }
  return FinishEnumeration(std::move(seen), total);
}

CellEnumeration EnumerateCellsBySampling(
    const std::vector<metric::Vector>& sites, double p, double lo, double hi,
    uint64_t samples, util::Rng* rng) {
  DP_CHECK(!sites.empty());
  DP_CHECK(hi > lo);
  const size_t d = sites[0].size();
  std::unordered_set<uint64_t> seen;
  metric::Vector point(d);
  for (uint64_t s = 0; s < samples; ++s) {
    for (size_t i = 0; i < d; ++i) point[i] = rng->NextDouble(lo, hi);
    seen.insert(ProbePermutationRank(sites, p, point));
  }
  return FinishEnumeration(std::move(seen), samples);
}

std::vector<uint64_t> PermutationSetDifference(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

}  // namespace geometry
}  // namespace distperm
