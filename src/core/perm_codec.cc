#include "core/perm_codec.h"

#include <vector>

namespace distperm {
namespace core {
namespace {

uint64_t Factorial64(size_t n) {
  uint64_t f = 1;
  for (size_t i = 2; i <= n; ++i) f *= i;
  return f;
}

// Fenwick tree over {0..k-1} counting unused values, for O(log k)
// prefix-count and select during (un)ranking.
class Fenwick {
 public:
  explicit Fenwick(size_t n) : tree_(n + 1, 0), n_(n) {
    for (size_t i = 1; i <= n; ++i) {
      tree_[i] += 1;
      size_t j = i + (i & (~i + 1));
      if (j <= n) tree_[j] += tree_[i];
    }
  }

  // Number of unused values < value.
  int CountBelow(size_t value) const {
    int sum = 0;
    for (size_t i = value; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

  void Remove(size_t value) {
    for (size_t i = value + 1; i <= n_; i += i & (~i + 1)) tree_[i] -= 1;
  }

  // Index of the (rank+1)-th unused value (rank 0-based).
  size_t Select(int rank) const {
    size_t pos = 0;
    size_t mask = 1;
    while ((mask << 1) <= n_) mask <<= 1;
    int remaining = rank + 1;
    for (; mask > 0; mask >>= 1) {
      size_t next = pos + mask;
      if (next <= n_ && tree_[next] < remaining) {
        pos = next;
        remaining -= tree_[next];
      }
    }
    return pos;  // 0-based value
  }

 private:
  std::vector<int> tree_;
  size_t n_;
};

}  // namespace

uint64_t RankPermutation(const Permutation& perm) {
  const size_t k = perm.size();
  DP_CHECK_MSG(k <= kMaxRank64Sites, "RankPermutation requires k <= 20");
  DP_CHECK(IsPermutation(perm));
  Fenwick unused(k);
  uint64_t rank = 0;
  uint64_t fact = Factorial64(k);
  for (size_t i = 0; i < k; ++i) {
    fact /= (k - i);
    int below = unused.CountBelow(perm[i]);
    rank += static_cast<uint64_t>(below) * fact;
    unused.Remove(perm[i]);
  }
  return rank;
}

Permutation UnrankPermutation(uint64_t rank, size_t k) {
  DP_CHECK_MSG(k <= kMaxRank64Sites, "UnrankPermutation requires k <= 20");
  DP_CHECK_MSG(k == 0 || rank < Factorial64(k), "rank out of range");
  Fenwick unused(k);
  Permutation perm(k);
  uint64_t fact = Factorial64(k);
  for (size_t i = 0; i < k; ++i) {
    fact /= (k - i);
    int digit = static_cast<int>(rank / fact);
    rank %= fact;
    size_t value = unused.Select(digit);
    perm[i] = static_cast<uint8_t>(value);
    unused.Remove(value);
  }
  return perm;
}

util::BigUint RankPermutationBig(const Permutation& perm) {
  const size_t k = perm.size();
  DP_CHECK(IsPermutation(perm));
  Fenwick unused(k);
  util::BigUint rank(0);
  for (size_t i = 0; i < k; ++i) {
    int below = unused.CountBelow(perm[i]);
    rank.MulSmall(static_cast<uint32_t>(k - i));
    rank.AddSmall(static_cast<uint32_t>(below));
    unused.Remove(perm[i]);
  }
  return rank;
}

Permutation UnrankPermutationBig(const util::BigUint& rank, size_t k) {
  // Extract factorial-base digits from least significant upward:
  // rank = sum_i digits[i] * (k-1-i)!, so successive division by
  // 2, 3, ..., k yields digits[k-2], digits[k-3], ..., digits[0]
  // (digits[k-1] always has weight 0! and value 0).
  util::BigUint scratch = rank;
  std::vector<uint32_t> digits(k, 0);
  for (size_t i = 0; i + 1 < k; ++i) {
    digits[k - 2 - i] = scratch.DivSmall(static_cast<uint32_t>(i + 2));
  }
  DP_CHECK_MSG(scratch.IsZero(), "rank out of range");
  Fenwick unused(k);
  Permutation perm(k);
  for (size_t i = 0; i < k; ++i) {
    size_t value = unused.Select(static_cast<int>(digits[i]));
    perm[i] = static_cast<uint8_t>(value);
    unused.Remove(value);
  }
  return perm;
}

uint64_t PermutationKey(const Permutation& perm) {
  if (perm.size() <= kMaxRank64Sites) return RankPermutation(perm);
  // FNV-1a over the bytes; collisions are possible in principle but the
  // counters that rely on exactness use k <= 20.
  uint64_t hash = 1469598103934665603ULL;
  for (uint8_t v : perm) {
    hash ^= v;
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace core
}  // namespace distperm
