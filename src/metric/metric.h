// Core metric-space abstractions.
//
// A metric space in this library is a point type P plus a distance
// function.  Distances are type-erased into Metric<P> so indexes and
// counters can be written once per point type; the concrete metric
// classes (LpMetric, LevenshteinMetric, ...) live in sibling headers and
// convert implicitly.
//
// The paper's definition (Section 1): <S, d> is a metric space; given k
// sites x_1..x_k, the distance permutation of y sorts site indices by
// increasing d(x_i, y), breaking ties by increasing index.

#ifndef DISTPERM_METRIC_METRIC_H_
#define DISTPERM_METRIC_METRIC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace distperm {
namespace metric {

/// Dense real vector point type used by the Lp spaces.
using Vector = std::vector<double>;

/// Sparse vector (sorted by dimension id) used by document spaces.
using SparseVector = std::vector<std::pair<uint32_t, double>>;

/// Identifies a dense-vector metric with a vectorized kernel (see
/// kernels.h).  Metrics tagged with anything but kNone evaluate, on
/// contiguous rows, bit-identically to their scalar entry points, so
/// indexes over Vector data may route bulk distance work through the
/// flat blocked kernels (index/flat_data_path.h) without perturbing
/// results or the distance-computation cost model.
enum class VectorKernelKind : uint8_t {
  kNone = 0,  ///< No raw kernel; always evaluate through the functor.
  kL1,        ///< Manhattan distance.
  kL2,        ///< Euclidean distance (kernels score in squared form).
  kLInf,      ///< Chebyshev distance.
  kAngle,     ///< Dense angle distance (kernels precompute norms).
};

/// A named, type-erased distance function over points of type P.
///
/// Wrapping costs one std::function indirection per distance evaluation;
/// the library's cost model (like the paper's) counts metric evaluations,
/// which dominate any real workload, so the indirection is irrelevant.
template <typename P>
class Metric {
 public:
  using PointType = P;
  using Fn = std::function<double(const P&, const P&)>;

  /// Constructs a metric from a name and a distance callable.
  Metric(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  /// Constructs from any copyable metric object exposing
  /// `double operator()(const P&, const P&) const` and `name()`.  If the
  /// object also exposes `vector_kernel()`, the kernel tag is carried
  /// through the type erasure so indexes can select the flat data path.
  template <typename M>
    requires requires(const M& m, const P& p) {
      { m(p, p) } -> std::convertible_to<double>;
      { m.name() } -> std::convertible_to<std::string>;
    }
  Metric(const M& m)  // NOLINT: implicit by design
      : name_(m.name()), fn_(m) {
    if constexpr (requires {
                    { m.vector_kernel() } ->
                        std::convertible_to<VectorKernelKind>;
                  }) {
      kernel_ = m.vector_kernel();
    }
  }

  /// Evaluates the distance.
  double operator()(const P& a, const P& b) const { return fn_(a, b); }

  /// Human-readable name ("L2", "levenshtein", ...).
  const std::string& name() const { return name_; }

  /// Vectorized-kernel tag (kNone unless the wrapped metric declared
  /// one).  Purely an optimization hint: evaluating through operator()
  /// and through the tagged kernel give bit-identical distances.
  VectorKernelKind vector_kernel() const { return kernel_; }

 private:
  std::string name_;
  Fn fn_;
  VectorKernelKind kernel_ = VectorKernelKind::kNone;
};

/// The discrete metric: 0 if equal, 1 otherwise.  Useful as a degenerate
/// test space (every non-site point has the identity distance
/// permutation under the tie-break rule).
template <typename P>
class DiscreteMetric {
 public:
  double operator()(const P& a, const P& b) const { return a == b ? 0 : 1; }
  std::string name() const { return "discrete"; }
};

}  // namespace metric
}  // namespace distperm

#endif  // DISTPERM_METRIC_METRIC_H_
