// Live-updatable front over generation-versioned sharded databases.
//
// The engine's serving state is a pair published as one immutable
// State object behind a single atomic slot (a hand-rolled
// std::atomic<std::shared_ptr> with TSan-verifiable ordering):
//
//   pin ───► State ──► Generation N   (immutable shards + indexes)
//                 └──► DeltaLog       (append-only writes since N)
//
// Queries pin the current State with one acquire of that slot (a
// few-instruction spinlock copy — no mutex, no blocking on writers or
// compactions): the generation is immutable and the delta log is
// append-only with a release/acquire committed counter, so a pinned
// (generation, delta window) view stays frozen no matter how many
// writes and compactions race past it.  QueryEngine::RunBatch receives the pinned
// generation's ShardedDatabase explicitly, so one batch executes
// against exactly one generation end to end.
//
// Writes (Insert/Remove) append to the delta log under a writer mutex.
// Each entry is routed to the shard that owns it (nearest shard
// centroid for vectors, a content hash for strings — see
// engine/shard_router.h); the routing travels in the WAL record, so
// recovery and replicas reproduce it exactly.  A query merges the log
// into its answer exactly: delta hits are measured (and charged to the
// query's distance accounting), removed ids are filtered out of the
// generation's results, and — via the shared-bound plumbing — the
// delta's k-th distance caps the generation search's pruning radius
// before it starts.  Once the window outgrows the `delta_index_min`
// knob, the writer publishes per-shard side-indexes over the window's
// prefix (built with the `delta_index` spec knobs) so the delta leg
// stops being a flat scan; the uncovered tail stays a scan.  The
// window is bounded by `delta_scan_limit`: a full buffer pushes back
// on writers (OutOfRange) instead of degrading readers.
//
// Compact() folds base ⊕ delta into generation N+1 incrementally:
// only the shards whose delta slice is non-empty (a base removal in
// them or an insert routed to them) are rebuilt — with the same
// deterministic per-shard registry build as a fresh database, whose
// RNG stream depends only on (seed, shard) — while untouched shards
// are shared into the new generation by shared_ptr, at zero build
// cost.  The result answers bit-identically to a from-scratch build
// over the equivalent per-shard slices.  The new State swaps in
// atomically; unconsumed tail writes are carried over, remapped and
// re-routed into the new generation.  In-flight queries finish on the
// old generation, which frees itself when its last pin drops (shared
// shards survive through the successor's reference).  Compaction runs
// on the caller's thread, or on a background pool thread via
// CompactAsync() / the `auto_compact_threshold` spec knob.
//
// Id semantics: ids name positions in the pinned view — [0, base_size)
// for the generation, base_size + j for the j-th insert in the current
// delta log.  Compaction compacts the numbering (removed ids vanish,
// delta inserts move into the base), so ids are stable between
// compactions and remapped across them; Remove() always interprets its
// argument against the current (post-swap) numbering.

#ifndef DISTPERM_ENGINE_LIVE_DATABASE_H_
#define DISTPERM_ENGINE_LIVE_DATABASE_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/generation.h"
#include "engine/generation_store.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/registry.h"
#include "index/search.h"
#include "metric/metric.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/env.h"
#include "storage/wal.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace distperm {
namespace engine {

/// Append-only write log with lock-free reads.  Appends are serialized
/// externally (LiveDatabase's writer mutex); readers see a consistent
/// prefix by acquiring `committed()` once and reading entries below it
/// — entry contents (and the lazily allocated chunk they live in) are
/// published by the release store of the counter, and the chunk
/// directory itself is a fixed array of atomic pointers, so no read
/// ever races a reallocation.
template <typename P>
class DeltaLog {
 public:
  struct Entry {
    bool is_remove = false;
    size_t id = 0;       ///< Assigned id (insert) or target id (remove).
    uint32_t shard = 0;  ///< Owning shard under the entry's generation.
    P point{};           ///< The inserted point; default for removes.
  };

  static constexpr size_t kChunkSize = 256;
  static constexpr size_t kMaxChunks = 4096;
  /// Hard capacity (1M entries); delta_scan_limit caps far earlier.
  static constexpr size_t kCapacity = kChunkSize * kMaxChunks;

  DeltaLog() {
    for (auto& chunk : chunks_) chunk.store(nullptr, std::memory_order_relaxed);
  }
  ~DeltaLog() {
    for (auto& chunk : chunks_) delete chunk.load(std::memory_order_relaxed);
  }
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Number of fully published entries.  Everything below this index is
  /// immutable and safe to read from any thread.
  size_t committed() const { return committed_.load(std::memory_order_acquire); }

  /// Entry `i`; the caller must have observed committed() > i.
  const Entry& entry(size_t i) const {
    const Chunk* chunk = chunks_[i / kChunkSize].load(std::memory_order_acquire);
    return chunk->entries[i % kChunkSize];
  }

  /// Appends one entry.  Single-writer: the caller must hold the
  /// database's writer mutex.  False when the hard capacity is reached.
  bool Append(Entry entry) {
    const size_t n = committed_.load(std::memory_order_relaxed);
    if (n >= kCapacity) return false;
    const size_t c = n / kChunkSize;
    Chunk* chunk = chunks_[c].load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Chunk();
      chunks_[c].store(chunk, std::memory_order_release);
    }
    chunk->entries[n % kChunkSize] = std::move(entry);
    committed_.store(n + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Chunk {
    std::array<Entry, kChunkSize> entries{};
  };
  std::atomic<size_t> committed_{0};
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_;
};

/// Observer of a store's logical write stream — the hook a serving
/// layer uses to feed replicas.  Callbacks fire on the writer's thread
/// with the write mutex held, in exact commit order; implementations
/// must be fast (hand off to another thread) and must not call back
/// into the store.
class ReplicationListener {
 public:
  virtual ~ReplicationListener() = default;
  /// One committed write.  `record` is the exact WAL payload bytes
  /// (EncodeWalInsert/EncodeWalRemove), `seq` its 1-based WAL sequence
  /// within `generation` — a replica appending these to its own WAL
  /// reproduces the primary's log byte for byte.
  virtual void OnRecord(uint64_t generation, uint64_t seq,
                        const std::string& record) = 0;
  /// A generation swap: the first `folded` records of the old window
  /// were folded into `new_generation`; `carried` holds the unconsumed
  /// tail re-encoded into the new id space (seqs 1..carried.size() of
  /// the new generation's WAL).  A replica replays the same fold with
  /// CompactPrefix(folded) — the deterministic build makes its new
  /// generation (and tail remap) bit-identical, so `carried` is a
  /// cross-check, not required input.
  virtual void OnRotate(uint64_t new_generation, uint64_t folded,
                        std::vector<std::string> carried) = 0;
};

/// The stream position a newly attached listener joins at: the serving
/// generation plus its committed window re-encoded as WAL payloads
/// (record i carrying seq i+1).  Everything after arrives via
/// OnRecord/OnRotate with no gap and no overlap.
struct ReplicationSeed {
  uint64_t generation = 0;
  std::vector<std::string> records;
};

/// Host-side knobs for a LiveDatabase (the delta knobs travel in the
/// index spec — see index::LiveSpecOptions).
struct LiveOptions {
  /// Worker threads for compaction rebuilds (ShardedDatabase
  /// build_threads; builds stay bit-identical at any count).
  size_t build_threads = 1;
  /// Worker threads of the built-in serving engine used by the
  /// RunBatch(batch) convenience overload.
  size_t query_threads = 1;
  /// When non-null, the store records its live_* instruments here
  /// (write/backpressure counters, compaction histograms, delta-depth
  /// and pinned-generation gauges — see README.md "Observability") and
  /// wires the built-in engine's engine_*/threadpool_* series into the
  /// same registry.  The registry must outlive the store.  The pinned
  /// query path stays zero-lock: hot-path recordings are sharded
  /// relaxed atomics, and the point-in-time gauges are exposition-time
  /// callbacks.
  obs::MetricsRegistry* metrics = nullptr;
  /// File-system access for the durable path (`wal_dir` spec knob).
  /// Null uses storage::Env::Default(); tests inject a
  /// storage::FaultInjectionEnv to exercise crash recovery.  Ignored
  /// when the spec has no wal_dir.
  storage::Env* env = nullptr;
};

/// What one successful compaction did — the incremental accounting the
/// bench gates on: a fold with one dirty shard of eight must report
/// shards_rebuilt=1, shards_shared=7, and a build_distance_computations
/// figure proportional to the dirty slice, not the database.
struct LiveCompactionStats {
  uint64_t folded_entries = 0;
  uint64_t shards_rebuilt = 0;
  uint64_t shards_shared = 0;
  /// Metric evaluations spent building the rebuilt shards (shared
  /// shards contribute zero — their indexes were reused verbatim).
  uint64_t build_distance_computations = 0;
  /// True when a shard's slice went empty and the fold fell back to a
  /// full uniform rebuild to restore balanced (buildable) shards.
  bool rebalanced = false;
  double seconds = 0.0;
};

/// Generation-versioned live store: lock-free pinned reads, mutex-
/// serialized writes, compaction with atomic generation swap-in.
template <typename P>
class LiveDatabase {
 private:
  /// Per-shard side-indexes over the covered prefix of the delta log:
  /// each shard's routed, alive inserts get a small registry-built
  /// index (the `delta_index` knobs) so the per-query delta leg stops
  /// being a flat scan of the whole window.  Immutable once published;
  /// entry pointers stay valid because DeltaLog chunks never move and
  /// the State that carries this set also carries the log.
  struct SideIndexSet {
    /// Log position the set covers; entries at and past this index are
    /// flat-scanned by queries (the uncovered tail).
    size_t covers = 0;
    struct ShardSide {
      /// Index over `entries`'s points (local id j = entries[j]), or
      /// null when the shard had too few inserts or its side build
      /// failed — queries then scan `entries` flat.
      std::unique_ptr<index::SearchIndex<P>> index;
      /// Covered inserts routed to this shard, alive as of `covers`,
      /// in arrival order.  Inserts removed after the set was built
      /// are filtered at query time against the pinned overlay.
      std::vector<const typename DeltaLog<P>::Entry*> entries;
    };
    std::vector<ShardSide> shards;
  };

  struct State {
    std::shared_ptr<const Generation<P>> generation;
    std::shared_ptr<DeltaLog<P>> log;
    /// Delta side-indexes covering a prefix of `log`; null until the
    /// window reaches the delta_index_min knob.  Republished in place
    /// (same generation + log) by the writer as the window grows.
    std::shared_ptr<const SideIndexSet> side;
  };

  /// Atomic publication slot for the serving state — functionally
  /// std::atomic<std::shared_ptr<const State>>, hand-rolled because
  /// libstdc++'s _Sp_atomic unlocks its reader path with a relaxed
  /// RMW, which leaves the reader's pointer read formally unordered
  /// against the next writer's swap (benign on real hardware, but a
  /// data race under the C++ model that ThreadSanitizer reports —
  /// and the TSan CI job gates on zero reports).  A few-instruction
  /// test-and-test-and-set spinlock with fully paired acquire/release
  /// is the same mechanism, verifiably clean, and uncontended at this
  /// call rate: one load per batch pin, one store per compaction.
  class StateSlot {
   public:
    std::shared_ptr<const State> load() const {
      Lock();
      std::shared_ptr<const State> copy = ptr_;
      Unlock();
      return copy;
    }

    void store(std::shared_ptr<const State> next) {
      Lock();
      ptr_.swap(next);
      Unlock();
      // `next` now holds the retired state; it releases outside the
      // critical section, so a last-reference Generation teardown
      // never runs under the slot lock.
    }

   private:
    void Lock() const {
      for (;;) {
        if (!locked_.exchange(true, std::memory_order_acquire)) return;
        while (locked_.load(std::memory_order_relaxed)) {
        }
      }
    }
    void Unlock() const {
      locked_.store(false, std::memory_order_release);
    }

    mutable std::atomic<bool> locked_{false};
    std::shared_ptr<const State> ptr_;
  };

 public:
  using BatchOutput = typename QueryEngine<P>::BatchOutput;

  /// A pinned, immutable view: one generation plus the delta window
  /// that was committed at pin time.  Copyable; holding any copy keeps
  /// the pinned generation (and log) alive.
  class Snapshot {
   public:
    uint64_t generation_number() const { return state_->generation->number(); }
    /// The pinned generation (exposed so callers can hold weak
    /// references and observe retirement after a swap).
    std::shared_ptr<const Generation<P>> generation() const {
      return state_->generation;
    }
    const ShardedDatabase<P>& database() const {
      return state_->generation->database();
    }
    /// Entries of the pinned delta window.
    size_t delta_entries() const { return delta_end_; }
    /// Live points in this view: base survivors plus alive inserts.
    size_t live_size() const {
      const Overlay overlay = BuildOverlay(*state_, delta_end_);
      return state_->generation->size() - overlay.removed_base +
             overlay.inserts.size();
    }
    /// The view's dataset in compaction order — the concatenation of
    /// MaterializeSlices() in shard order.  Compacting this exact view
    /// and building a fresh database over these slices (see
    /// MaterializeSlices) yield bit-identical search behavior.
    std::vector<P> Materialize() const {
      std::vector<P> data;
      MaterializeWindow(*state_, delta_end_, &data, nullptr);
      return data;
    }

    /// The view's dataset as the per-shard slices compaction folds it
    /// into: slice s holds shard s's base survivors in id order, then
    /// the alive delta inserts routed to s in arrival order.  A
    /// ShardedDatabase::BuildFromRegistrySliced over these slices with
    /// the store's (spec, seed) is the full-rebuild reference an
    /// incremental compaction must match bit-for-bit.
    std::vector<std::vector<P>> MaterializeSlices() const {
      std::vector<std::vector<P>> slices;
      std::vector<bool> dirty;
      MaterializeRouted(*state_, delta_end_, &slices, &dirty, nullptr);
      return slices;
    }

    /// The point behind a live id in this view — how a serving layer
    /// fetches the record named by a SearchResult.  NotFound for
    /// removed or never-assigned ids.
    util::Result<P> ResolvePoint(size_t id) const {
      const DeltaLog<P>& log = *state_->log;
      const P* pending = nullptr;
      for (size_t i = 0; i < delta_end_; ++i) {
        const typename DeltaLog<P>::Entry& entry = log.entry(i);
        if (entry.id != id) continue;
        if (entry.is_remove) {
          return util::Status::NotFound(
              "LiveDatabase: id " + std::to_string(id) +
              " was removed in this view");
        }
        pending = &entry.point;
      }
      if (pending != nullptr) return *pending;
      const ShardedDatabase<P>& db = state_->generation->database();
      for (size_t s = 0; s < db.shard_count(); ++s) {
        const size_t offset = db.shard_offset(s);
        if (id >= offset && id - offset < db.shard(s).size()) {
          return db.shard(s).data()[id - offset];
        }
      }
      return util::Status::NotFound(
          "LiveDatabase: no point with id " + std::to_string(id));
    }

   private:
    friend class LiveDatabase<P>;
    // Only Pin() constructs snapshots, so state_ is always set and the
    // accessors never see a null view.
    Snapshot() = default;
    std::shared_ptr<const State> state_;
    size_t delta_end_ = 0;
  };

  /// Opens the store.  `spec` is an index registry spec optionally
  /// carrying the live knobs (`delta_scan_limit`,
  /// `auto_compact_threshold`, `wal_dir`, `fsync`); the residual spec
  /// (knobs stripped) builds every generation's shards.
  ///
  /// Without `wal_dir` the store is purely in memory: generation 1 is
  /// built over `data` and a crash discards everything.  With
  /// `wal_dir`, the store is durable:
  ///   - an empty directory opens fresh — generation 1 is built over
  ///     `data`, its snapshot is written, and a WAL is started;
  ///   - a directory holding a store recovers it — the newest valid
  ///     snapshot is loaded (a partially written or corrupted one is
  ///     rejected by checksum and the previous one used), its WAL is
  ///     replayed with any torn tail truncated, and the store resumes
  ///     exactly where the acked-and-durable writes left it.  `data`
  ///     must be empty in this case (the on-disk store IS the data);
  ///     spec/seed/shard_count must match what the snapshot records.
  static util::Result<std::unique_ptr<LiveDatabase>> Open(
      std::vector<P> data, const metric::Metric<P>& metric,
      size_t shard_count, const std::string& spec, uint64_t seed,
      LiveOptions options = {}) {
    util::Result<std::pair<std::string, index::LiveSpecOptions>> split =
        index::SplitLiveSpec(spec);
    if (!split.ok()) return split.status();
    const std::string& residual_spec = split.value().first;
    const index::LiveSpecOptions& live = split.value().second;
    if (!live.wal_dir.empty()) {
      return OpenDurable(std::move(data), metric, shard_count,
                         residual_spec, seed, live, options);
    }
    util::Result<std::shared_ptr<const Generation<P>>> generation =
        Generation<P>::Build(std::move(data), metric, shard_count,
                             residual_spec, seed, /*number=*/1,
                             options.build_threads);
    if (!generation.ok()) return generation.status();
    return std::unique_ptr<LiveDatabase>(new LiveDatabase(
        std::move(generation).value(), metric, shard_count, residual_spec,
        seed, live, options));
  }

  ~LiveDatabase() {
    // Drain any in-flight background compaction before members die.
    compact_pool_.Wait();
    if (wal_ != nullptr) {
      // Best-effort flush of a buffered tail (kBatched/kNever); a
      // failure here is a failure to extend durability past the last
      // policy-mandated sync, which the policy already allows.
      wal_->Close();
    }
    if (registry_ != nullptr) {
      for (uint64_t handle : callback_handles_) {
        registry_->UnregisterCallback(handle);
      }
    }
  }

  // ------------------------------------------------------------ reads

  /// Pins the current (generation, delta window) with a single acquire
  /// of the state slot.  Never blocks on writers or compactions and
  /// never observes a torn pair: the window length is read from the
  /// pinned log, which stops growing once a swap retires it.
  Snapshot Pin() const {
    Snapshot snapshot;
    snapshot.state_ = state_.load();
    snapshot.delta_end_ = snapshot.state_->log->committed();
    return snapshot;
  }

  /// Serves `batch` against a fresh pin on the built-in engine.
  /// Convenience path, serialized per store (RunBatch is not reentrant
  /// per engine); concurrent serving threads should each bring their
  /// own engine and use the overloads below.
  BatchOutput RunBatch(const std::vector<QuerySpec<P>>& batch) {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    return RunBatch(engine_, Pin(), batch);
  }

  /// Serves `batch` against a fresh pin on a caller-owned engine.
  BatchOutput RunBatch(QueryEngine<P>& engine,
                       const std::vector<QuerySpec<P>>& batch) const {
    return RunBatch(engine, Pin(), batch);
  }

  /// Serves `batch` against an explicit pinned view: the whole batch
  /// sees `snapshot`'s generation and delta window, bit-identically to
  /// a fresh database built over snapshot.Materialize() for exact
  /// indexes — racing writes and swaps cannot leak in.  Per-query
  /// distance accounting includes the delta scan's exact evaluations;
  /// distance budgets and truncation flags apply to the generation
  /// search exactly as in the non-live engine (the delta leg is bounded
  /// by delta_scan_limit instead of the budget).
  BatchOutput RunBatch(QueryEngine<P>& engine, const Snapshot& snapshot,
                       const std::vector<QuerySpec<P>>& batch) const {
    const State& state = *snapshot.state_;
    const Overlay overlay = BuildOverlay(state, snapshot.delta_end_);
    if (overlay.inserts.empty() && overlay.removed.empty()) {
      // Empty window: the pinned generation answers alone, with the
      // exact behavior (and zero copies) of the non-live engine path.
      return engine.RunBatch(state.generation->database(), batch);
    }
    const size_t query_count = batch.size();

    // Trace bookkeeping: traced queries get a delta-leg span, and the
    // engine's shard spans are rebased so every span of a live query
    // is relative to this call's start.
    bool any_trace = false;
    for (const QuerySpec<P>& spec : batch) {
      if (spec.collect_trace) any_trace = true;
    }
    const auto live_start = std::chrono::steady_clock::now();
    std::vector<std::pair<double, double>> delta_times(
        any_trace ? query_count : 0);

    // Delta leg first: exact hits over the alive inserts, per query.
    // A full delta collector's k-th distance is a valid upper bound on
    // the merged k-th distance (its k hits are all in the final set),
    // so it seeds the generation search's pruning radius — delta hits
    // tighten shard pruning instead of only adding work.
    //
    // With a published side-index set, the covered prefix is served by
    // the per-shard side-indexes (exact, with an over-fetch covering
    // entries removed after the set was built) and only the uncovered
    // tail is flat-scanned; without one, the whole window is.  Both
    // paths produce the identical hit set — the side spec is exact and
    // the collector's (distance, id) tie-break is order-independent —
    // so publishing a side set never changes an answer, only its cost.
    const SideIndexSet* side = state.side.get();
    std::vector<const typename DeltaLog<P>::Entry*> tail_inserts;
    if (side != nullptr) {
      DP_CHECK(side->covers <= snapshot.delta_end_);
      const DeltaLog<P>& log = *state.log;
      for (size_t i = side->covers; i < snapshot.delta_end_; ++i) {
        const typename DeltaLog<P>::Entry& entry = log.entry(i);
        if (entry.is_remove || overlay.removed.count(entry.id) != 0) {
          continue;
        }
        tail_inserts.push_back(&entry);
      }
    }
    // Upper bound on covered side entries filtered at query time (an
    // insert removed after the set was built): every such id is a
    // removed non-base id.  Requesting k + this many from a shard's
    // side-index guarantees its k nearest alive entries survive the
    // filter, which keeps the side kNN path exact.
    const size_t side_spare = overlay.removed.size() - overlay.removed_base;
    std::vector<QuerySpec<P>> adjusted(batch);
    std::vector<std::vector<index::SearchResult>> delta_hits(query_count);
    std::vector<uint64_t> delta_cost(query_count, 0);
    for (size_t q = 0; q < query_count; ++q) {
      const QuerySpec<P>& spec = batch[q];
      if (!index::ValidateRequest(spec).ok()) continue;  // engine rejects
      const bool traced = any_trace && spec.collect_trace;
      std::chrono::steady_clock::time_point delta_t0{};
      if (traced) delta_t0 = std::chrono::steady_clock::now();
      const auto stamp = [&]() {
        if (traced) {
          delta_times[q] = {Seconds(live_start, delta_t0),
                            Seconds(live_start,
                                    std::chrono::steady_clock::now())};
        }
      };
      if (spec.mode == QueryType::kRange) {
        const auto range_scan = [&](const typename DeltaLog<P>::Entry* entry) {
          const double d = metric_(spec.point, entry->point);
          ++delta_cost[q];
          if (d <= spec.radius) delta_hits[q].push_back({entry->id, d});
        };
        if (side != nullptr) {
          for (const auto& ss : side->shards) {
            if (ss.entries.empty()) continue;
            if (ss.index != nullptr) {
              index::SearchResponse resp = ss.index->Search(
                  index::SearchRequest<P>::Range(spec.point, spec.radius));
              if (resp.status.ok()) {
                delta_cost[q] += resp.stats.distance_computations;
                for (const index::SearchResult& r : resp.results) {
                  const auto* entry = ss.entries[r.id];
                  if (overlay.removed.count(entry->id) != 0) continue;
                  delta_hits[q].push_back({entry->id, r.distance});
                }
                continue;
              }
            }
            for (const auto* entry : ss.entries) {
              if (overlay.removed.count(entry->id) != 0) continue;
              range_scan(entry);
            }
          }
          for (const auto* entry : tail_inserts) range_scan(entry);
        } else {
          for (const auto* entry : overlay.inserts) range_scan(entry);
        }
        stamp();
        continue;
      }
      index::KnnCollector collector(spec.k);
      collector.Reserve(std::min(spec.k, overlay.inserts.size()));
      const auto knn_scan = [&](const typename DeltaLog<P>::Entry* entry) {
        const double d = metric_(spec.point, entry->point);
        ++delta_cost[q];
        if (spec.mode == QueryType::kKnnWithinRadius && d > spec.radius) {
          return;
        }
        collector.Offer(entry->id, d);
      };
      if (side != nullptr) {
        const size_t want = spec.k + side_spare;
        for (const auto& ss : side->shards) {
          if (ss.entries.empty()) continue;
          if (ss.index != nullptr) {
            index::SearchResponse resp = ss.index->Search(
                spec.mode == QueryType::kKnnWithinRadius
                    ? index::SearchRequest<P>::KnnWithinRadius(
                          spec.point, want, spec.radius)
                    : index::SearchRequest<P>::Knn(spec.point, want));
            if (resp.status.ok()) {
              delta_cost[q] += resp.stats.distance_computations;
              for (const index::SearchResult& r : resp.results) {
                const auto* entry = ss.entries[r.id];
                if (overlay.removed.count(entry->id) != 0) continue;
                collector.Offer(entry->id, r.distance);
              }
              continue;
            }
          }
          for (const auto* entry : ss.entries) {
            if (overlay.removed.count(entry->id) != 0) continue;
            knn_scan(entry);
          }
        }
        for (const auto* entry : tail_inserts) knn_scan(entry);
      } else {
        for (const auto* entry : overlay.inserts) knn_scan(entry);
      }
      if (collector.size() == spec.k) {
        adjusted[q].initial_radius_bound =
            std::min(adjusted[q].initial_radius_bound, collector.Radius());
      }
      delta_hits[q] = collector.Take();
      if (overlay.removed_base > 0) {
        // Over-fetch: up to removed_base of the generation's nearest
        // may be filtered out, so ask for that many spares — the k
        // best survivors are then always present in the partial.
        adjusted[q].k = spec.k + overlay.removed_base;
      }
      stamp();
    }

    BatchOutput out =
        engine.RunBatch(state.generation->database(), adjusted);

    const auto is_removed = [&overlay](size_t id) {
      return overlay.removed.count(id) != 0;
    };
    const double engine_offset =
        any_trace ? Seconds(live_start, out.batch_start) : 0.0;
    for (size_t q = 0; q < query_count; ++q) {
      if (!out.statuses[q].ok()) continue;
      index::MergeDeltaResults(&out.results[q], is_removed,
                               std::move(delta_hits[q]), batch[q].mode,
                               batch[q].k);
      out.per_query_distance_computations[q] += delta_cost[q];
      out.stats.distance_computations += delta_cost[q];
      if (any_trace && batch[q].collect_trace) {
        // Rebase the engine's shard spans onto this call's clock and
        // prepend the delta-leg span, so the traced spans still
        // partition the query's (delta-inclusive) distance count.
        auto& spans = out.traces[q].spans;
        for (obs::SearchTrace::Span& span : spans) {
          span.start_seconds += engine_offset;
          span.stop_seconds += engine_offset;
        }
        obs::SearchTrace::Span delta_span;
        delta_span.delta = true;
        delta_span.start_seconds = delta_times[q].first;
        delta_span.stop_seconds = delta_times[q].second;
        delta_span.distance_computations = delta_cost[q];
        // The bound the delta leg handed the generation search (or
        // +inf when the delta could not cap it).
        delta_span.bound_exit = adjusted[q].initial_radius_bound;
        spans.insert(spans.begin(), delta_span);
      }
    }
    if (any_trace) out.batch_start = live_start;
    return out;
  }

  // ----------------------------------------------------------- writes

  /// Appends `point` to the delta; visible to every query pinned after
  /// the append.  Returns the assigned id (stable until the next
  /// compaction folds it into the base).  OutOfRange when the delta
  /// holds delta_scan_limit entries — compact to make room.
  ///
  /// Durable stores write the WAL record first: an insert is only
  /// committed to the in-memory log (and thus acked) after the WAL
  /// accepted it, so no acked write can be absent from the log a
  /// recovery replays.  A WAL I/O error is returned and the write is
  /// NOT applied.
  util::Result<size_t> Insert(P point) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    util::Status room = EnsureRoomLocked();
    if (!room.ok()) return room;
    // Route against the serving generation: the routing decides which
    // shard this insert dirties at the next fold, and travels in the
    // WAL record so recovery and replicas reproduce it exactly.
    const uint32_t shard = writer_generation_->router().Route(point);
    std::string record;
    if (wal_ != nullptr || listener_ != nullptr) {
      record = EncodeWalInsert<P>(point, shard);  // before the point moves
    }
    if (wal_ != nullptr) {
      util::Status logged = wal_->Append(record);
      if (!logged.ok()) return logged;
    }
    const size_t id = writer_base_size_ + writer_inserts_;
    DP_CHECK(log_->Append({/*is_remove=*/false, id, shard, std::move(point)}));
    ++writer_inserts_;
    writer_insert_shard_.emplace(id, shard);
    published_delta_depth_.store(log_->committed(),
                                 std::memory_order_relaxed);
    mutation_clock_.fetch_add(1, std::memory_order_relaxed);
    if (listener_ != nullptr) {
      listener_->OnRecord(
          published_generation_.load(std::memory_order_relaxed),
          log_->committed(), record);
    }
    if (inserts_ != nullptr) inserts_->Increment();
    MaybeRebuildSideIndexLocked();
    MaybeScheduleAutoCompactLocked();
    return id;
  }

  /// Removes the live point with `id` (a base point or a pending
  /// insert) from every query pinned after the append.  NotFound for
  /// ids that do not name a live point in the current numbering;
  /// OutOfRange when the delta is full.  WAL-before-commit as Insert.
  util::Status Remove(size_t id) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (id >= writer_base_size_ + writer_inserts_ ||
        writer_removed_.count(id) != 0) {
      return util::Status::NotFound(
          "LiveDatabase: no live point with id " + std::to_string(id));
    }
    util::Status room = EnsureRoomLocked();
    if (!room.ok()) return room;
    // The remove dirties the shard that owns its target: a base id's
    // owner comes from the generation's slice layout, a pending
    // insert's from the routing recorded when it was appended.
    const uint32_t shard = ShardForLiveIdLocked(id);
    std::string record;
    if (wal_ != nullptr || listener_ != nullptr) {
      record = EncodeWalRemove<P>(id, shard);
    }
    if (wal_ != nullptr) {
      util::Status logged = wal_->Append(record);
      if (!logged.ok()) return logged;
    }
    DP_CHECK(log_->Append({/*is_remove=*/true, id, shard, P{}}));
    writer_removed_.insert(id);
    published_delta_depth_.store(log_->committed(),
                                 std::memory_order_relaxed);
    mutation_clock_.fetch_add(1, std::memory_order_relaxed);
    remove_clock_.fetch_add(1, std::memory_order_relaxed);
    if (listener_ != nullptr) {
      listener_->OnRecord(
          published_generation_.load(std::memory_order_relaxed),
          log_->committed(), record);
    }
    if (removes_ != nullptr) removes_->Increment();
    MaybeRebuildSideIndexLocked();
    MaybeScheduleAutoCompactLocked();
    return util::Status::OK();
  }

  /// Replication fast path: applies one WAL record received from a
  /// primary, appending the primary's exact encoded bytes to the
  /// local WAL instead of re-encoding the point.  The replica's WAL
  /// mirrors the primary's record stream 1:1, so `record` is
  /// byte-identical to what Insert/Remove would have produced —
  /// callers must pass `op` == DecodeWalRecord(record).  Same
  /// semantics and error statuses as Insert/Remove otherwise.
  util::Status ApplyReplicated(WalOp<P> op, const std::string& record) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    // The primary's routing is authoritative — re-deriving it here
    // could only agree (the routers are built from bit-identical
    // generations), so trust the tag and just bound-check it.
    if (op.shard >= shard_count_) {
      return util::Status::InvalidArgument(
          "ApplyReplicated: record routes to shard " +
          std::to_string(op.shard) + " of " + std::to_string(shard_count_));
    }
    if (op.is_remove) {
      const size_t id = static_cast<size_t>(op.id);
      if (id >= writer_base_size_ + writer_inserts_ ||
          writer_removed_.count(id) != 0) {
        return util::Status::NotFound(
            "LiveDatabase: no live point with id " + std::to_string(id));
      }
    }
    util::Status room = EnsureRoomLocked();
    if (!room.ok()) return room;
    if (wal_ != nullptr) {
      util::Status logged = wal_->Append(record);
      if (!logged.ok()) return logged;
    }
    if (op.is_remove) {
      const size_t id = static_cast<size_t>(op.id);
      DP_CHECK(log_->Append({/*is_remove=*/true, id, op.shard, P{}}));
      writer_removed_.insert(id);
    } else {
      const size_t id = writer_base_size_ + writer_inserts_;
      DP_CHECK(log_->Append(
          {/*is_remove=*/false, id, op.shard, std::move(op.point)}));
      ++writer_inserts_;
      writer_insert_shard_.emplace(id, op.shard);
    }
    published_delta_depth_.store(log_->committed(),
                                 std::memory_order_relaxed);
    mutation_clock_.fetch_add(1, std::memory_order_relaxed);
    if (op.is_remove) {
      remove_clock_.fetch_add(1, std::memory_order_relaxed);
    }
    if (listener_ != nullptr) {
      listener_->OnRecord(
          published_generation_.load(std::memory_order_relaxed),
          log_->committed(), record);
    }
    if (op.is_remove) {
      if (removes_ != nullptr) removes_->Increment();
    } else {
      if (inserts_ != nullptr) inserts_->Increment();
    }
    MaybeRebuildSideIndexLocked();
    MaybeScheduleAutoCompactLocked();
    return util::Status::OK();
  }

  /// Forces everything acked so far onto disk regardless of fsync
  /// policy (no-op for in-memory stores).  The one way to get a
  /// durability point under fsync=batched/never without compacting.
  util::Status SyncWal() {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (wal_ == nullptr) return util::Status::OK();
    return wal_->Sync();
  }

  // ------------------------------------------------------ replication

  /// Registers `listener` (one at a time; replaces any previous) and
  /// returns the exact stream position it joins at: OnRecord/OnRotate
  /// continue seamlessly after the seed's records, with no gap and no
  /// duplicate — both the seed capture and every callback happen under
  /// the write mutex, so the order is total.
  ReplicationSeed AttachReplicationListener(ReplicationListener* listener) {
    std::lock_guard<std::mutex> lock(write_mutex_);
    listener_ = listener;
    ReplicationSeed seed;
    seed.generation =
        published_generation_.load(std::memory_order_relaxed);
    const size_t len = log_->committed();
    seed.records.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      const typename DeltaLog<P>::Entry& entry = log_->entry(i);
      seed.records.push_back(
          entry.is_remove ? EncodeWalRemove<P>(entry.id, entry.shard)
                          : EncodeWalInsert<P>(entry.point, entry.shard));
    }
    return seed;
  }

  /// Unregisters the listener; no callback fires after this returns.
  void DetachReplicationListener() {
    std::lock_guard<std::mutex> lock(write_mutex_);
    listener_ = nullptr;
  }

  /// Replaces the entire serving state with `generation` — the replica
  /// resync path after fetching a primary's snapshot.  The delta log is
  /// discarded (the caller re-applies the primary's stream from seq 1),
  /// a fresh WAL for the new generation is started (durable stores;
  /// the fetched snapshot file must already sit at its final name), and
  /// the old generation's files are retired unless it IS the new one
  /// (same-generation divergence resync: the rename that landed the
  /// fetched snapshot already replaced the file).  Both clocks bump —
  /// every cached result and bound predating the reset must die.
  /// Incompatible with an attached listener (a store being reset is a
  /// follower, not a source).
  util::Status ResetToGeneration(
      std::shared_ptr<const Generation<P>> generation) {
    std::lock_guard<std::mutex> compact_lock(compact_mutex_);
    std::lock_guard<std::mutex> write_lock(write_mutex_);
    DP_CHECK(listener_ == nullptr);
    const uint64_t old_generation =
        published_generation_.load(std::memory_order_relaxed);
    const uint64_t new_generation = generation->number();
    std::unique_ptr<storage::WalWriter> next_wal;
    if (env_ != nullptr) {
      storage::WalWriter::Options wal_options;
      wal_options.policy = fsync_policy_;
      wal_options.instruments = wal_instruments_;
      auto opened = storage::WalWriter::Open(
          env_, StorePath(WalFileName(new_generation)), /*truncate=*/true,
          /*first_seq=*/1, wal_options);
      if (!opened.ok()) return opened.status();
      next_wal = std::move(opened).value();
    }
    if (registry_ != nullptr) TrackGeneration(generation);
    auto next_log = std::make_shared<DeltaLog<P>>();
    writer_base_size_ = generation->size();
    writer_inserts_ = 0;
    writer_removed_.clear();
    writer_insert_shard_.clear();
    writer_generation_ = generation;
    writer_side_ = nullptr;
    auto next = std::make_shared<const State>(
        State{std::move(generation), next_log, nullptr});
    state_.store(std::move(next));
    log_ = std::move(next_log);
    published_generation_.store(new_generation, std::memory_order_relaxed);
    published_delta_depth_.store(0, std::memory_order_relaxed);
    mutation_clock_.fetch_add(1, std::memory_order_relaxed);
    remove_clock_.fetch_add(1, std::memory_order_relaxed);
    if (env_ != nullptr) {
      if (wal_ != nullptr) wal_->Close();
      wal_ = std::move(next_wal);
      wal_generation_ = new_generation;
      if (old_generation != new_generation) {
        env_->DeleteFile(StorePath(WalFileName(old_generation)));
        env_->DeleteFile(StorePath(SnapshotFileName(old_generation)));
      }
    }
    return util::Status::OK();
  }

  // ------------------------------------------------------- compaction

  /// Folds the committed delta into a new generation on the calling
  /// thread and swaps it in: rebuilds replacement shards from
  /// base ⊕ delta with the store's deterministic (spec, seed, shard
  /// count) — on `build_threads` workers — then publishes the new
  /// State atomically.  Writes landing during the rebuild are carried
  /// over into the new generation's delta log, remapped to the new id
  /// space.  Queries never block: in-flight batches finish on the old
  /// generation, which retires when its last pin drops.  On a rebuild
  /// error (e.g. a spec that cannot index an emptied database) the old
  /// generation keeps serving and the delta is kept.
  util::Status Compact() {
    return CompactPrefix(std::numeric_limits<size_t>::max());
  }

  /// Like Compact(), but folds at most the first `limit` committed
  /// delta entries; the rest stay pending (remapped into the new
  /// generation's log).  Smaller windows bound the rebuild's latency
  /// and memory at the price of more frequent swaps.
  ///
  /// Durable stores additionally rotate their on-disk state, ordered so
  /// a crash at ANY point leaves exactly one recoverable store:
  ///   1. write snapshot-(N+1) under a .tmp name (fsynced, unpublished;
  ///      the slow part — runs before writers are blocked);
  ///   2. under the write lock, start wal-(N+1) with the remapped
  ///      unconsumed tail and fsync it — the tail must be durable in
  ///      the new log BEFORE the new snapshot becomes the recovery
  ///      root, or a crash after step 3 would lose acked writes;
  ///   3. publish: rename the .tmp to snapshot-(N+1) + directory fsync.
  ///      A crash before this recovers from snapshot-N + wal-N (the
  ///      orphan wal-(N+1)/.tmp are deleted); after it, from N+1;
  ///   4. swap the in-memory state and switch the writer to wal-(N+1);
  ///   5. outside the locks, retire snapshot-N and wal-N (best-effort —
  ///      recovery ignores stale generations anyway).
  /// Any I/O failure aborts before step 4: the old generation (memory
  /// and disk) keeps serving, partial files are deleted, and the error
  /// is returned and counted in live_compaction_failures_total.
  util::Status CompactPrefix(size_t limit) {
    std::lock_guard<std::mutex> compact_lock(compact_mutex_);
    std::shared_ptr<const State> state =
        state_.load();
    const size_t end = std::min(limit, state->log->committed());
    if (end == 0) return util::Status::OK();  // nothing to fold

    const auto compact_start = std::chrono::steady_clock::now();
    const uint64_t old_generation = state->generation->number();
    const uint64_t new_generation = old_generation + 1;

    LiveCompactionStats stats;
    stats.folded_entries = end;

    // Fold only the dirty shards; clean ones are shared into the new
    // generation by shared_ptr.  The per-shard RNG stream depends only
    // on (seed, shard), so a shared shard is bit-identical to what a
    // full per-slice rebuild would produce — the differential harness
    // pins this.  If a slice went empty while the store still holds
    // points, fall back to a full uniform rebuild instead: it restores
    // balance, keeps perm-family specs buildable (they reject empty
    // shards), and — being derived purely from the materialized order —
    // replays deterministically on replicas and recovery.  The shape
    // pass is copy-free, so the common skewed fold materializes only
    // the dirty slices.
    std::vector<size_t> slice_sizes;
    std::vector<bool> dirty;
    FoldIdRemap id_remap;
    RoutedShape(*state, end, &slice_sizes, &dirty, &id_remap);
    size_t total = 0;
    for (const size_t n : slice_sizes) total += n;
    bool rebalance = total == 0;
    for (const size_t n : slice_sizes) {
      if (total > 0 && n == 0) rebalance = true;
    }

    std::vector<std::vector<P>> slices;
    std::vector<bool> routed_dirty;
    MaterializeRouted(*state, end, &slices, &routed_dirty, nullptr,
                      rebalance ? nullptr : &dirty);

    std::shared_ptr<const Generation<P>> next_generation;
    if (rebalance) {
      std::vector<P> final_data;
      final_data.reserve(total);
      for (auto& slice : slices) {
        for (auto& point : slice) final_data.push_back(std::move(point));
      }
      util::Result<std::shared_ptr<const Generation<P>>> built =
          Generation<P>::Build(std::move(final_data), metric_, shard_count_,
                               index_spec_, seed_, new_generation,
                               build_threads_);
      if (!built.ok()) {
        if (compaction_failures_ != nullptr) {
          compaction_failures_->Increment();
        }
        return built.status();
      }
      next_generation = std::move(built).value();
      stats.rebalanced = true;
      stats.shards_rebuilt = shard_count_;
      stats.build_distance_computations =
          next_generation->database().build_distance_computations();
    } else {
      const ShardedDatabase<P>& old_db = state->generation->database();
      std::vector<typename ShardedDatabase<P>::SharedShard> new_shards(
          shard_count_);
      std::vector<uint64_t> epochs = state->generation->epochs();
      std::vector<util::Status> statuses(shard_count_, util::Status::OK());
      const auto build_shard = [&](size_t s) {
        util::Rng rng(seed_ * 0x9e3779b97f4a7c15ull + s);
        util::Result<std::unique_ptr<index::SearchIndex<P>>> built_shard =
            index::Registry<P>::Global().Create(
                index_spec_, std::move(slices[s]), metric_, &rng);
        if (!built_shard.ok()) {
          statuses[s] = built_shard.status();
          return;
        }
        new_shards[s] = std::move(built_shard).value();
      };
      std::vector<size_t> dirty_shards;
      for (size_t s = 0; s < shard_count_; ++s) {
        if (dirty[s]) dirty_shards.push_back(s);
      }
      if (build_threads_ <= 1 || dirty_shards.size() <= 1) {
        for (size_t s : dirty_shards) build_shard(s);
      } else {
        util::ThreadPool pool(
            std::min(build_threads_, dirty_shards.size()));
        for (size_t s : dirty_shards) {
          pool.Submit([&build_shard, s]() { build_shard(s); });
        }
        pool.Wait();
      }
      for (size_t s = 0; s < shard_count_; ++s) {
        if (!statuses[s].ok()) {
          if (compaction_failures_ != nullptr) {
            compaction_failures_->Increment();
          }
          return util::Status(statuses[s].code(),
                              "shard " + std::to_string(s) + ": " +
                                  statuses[s].message());
        }
      }
      for (size_t s = 0; s < shard_count_; ++s) {
        if (dirty[s]) {
          epochs[s] = new_generation;
          ++stats.shards_rebuilt;
          stats.build_distance_computations +=
              new_shards[s]->build_distance_computations();
        } else {
          new_shards[s] = old_db.shared_shard(s);
          ++stats.shards_shared;
        }
      }
      next_generation = Generation<P>::Assemble(
          ShardedDatabase<P>::FromShards(std::move(new_shards)),
          index_spec_, seed_, new_generation, std::move(epochs));
    }
    if (registry_ != nullptr) TrackGeneration(next_generation);

    const bool durable = env_ != nullptr;
    const std::string snapshot_path =
        durable ? StorePath(SnapshotFileName(new_generation)) : std::string();
    const std::string tmp_snapshot_path = snapshot_path + ".tmp";
    if (durable) {
      util::Status written = WriteSnapshotTimed(
          *next_generation, tmp_snapshot_path, /*atomic=*/false);
      if (!written.ok()) {
        env_->DeleteFile(tmp_snapshot_path);  // best effort
        if (compaction_failures_ != nullptr) {
          compaction_failures_->Increment();
        }
        return written;
      }
    }

    {
      // Swap: carry the unconsumed tail into a fresh log (copied, not
      // moved — pinned readers still scan the retired log) and publish.
      // Writers block only for the tail replay (and, when durable, the
      // tail fsync + rename).
      std::lock_guard<std::mutex> write_lock(write_mutex_);

      std::unique_ptr<storage::WalWriter> next_wal;
      const auto fail_rotation = [&](util::Status error) {
        if (next_wal != nullptr) next_wal->Close();  // best effort, like
        next_wal.reset();                            // the deletes below
        env_->DeleteFile(StorePath(WalFileName(new_generation)));
        env_->DeleteFile(tmp_snapshot_path);
        env_->DeleteFile(snapshot_path);
        if (compaction_failures_ != nullptr) {
          compaction_failures_->Increment();
        }
        return error;
      };
      if (durable) {
        storage::WalWriter::Options wal_options;
        wal_options.policy = fsync_policy_;
        wal_options.instruments = wal_instruments_;
        auto opened = storage::WalWriter::Open(
            env_, StorePath(WalFileName(new_generation)), /*truncate=*/true,
            /*first_seq=*/1, wal_options);
        if (!opened.ok()) return fail_rotation(opened.status());
        next_wal = std::move(opened).value();
      }

      const size_t len = state->log->committed();
      auto next_log = std::make_shared<DeltaLog<P>>();
      const size_t next_base = next_generation->size();
      size_t tail_inserts = 0;
      std::unordered_set<size_t> tail_removed;
      std::unordered_map<size_t, size_t> tail_map;
      std::unordered_map<size_t, uint32_t> tail_shard;
      std::vector<std::string> carried;  // re-encoded tail, for OnRotate
      for (size_t i = end; i < len; ++i) {
        const typename DeltaLog<P>::Entry& entry = state->log->entry(i);
        if (!entry.is_remove) {
          const size_t new_id = next_base + tail_inserts;
          tail_map.emplace(entry.id, new_id);
          // Re-route against the NEW generation's layout: the carried
          // entry now dirties a shard of generation N+1.  Replicas
          // replay the same CompactPrefix over a bit-identical state,
          // so their re-encoded tails match byte for byte.
          const uint32_t shard =
              next_generation->router().Route(entry.point);
          tail_shard.emplace(new_id, shard);
          if (next_wal != nullptr || listener_ != nullptr) {
            std::string record = EncodeWalInsert<P>(entry.point, shard);
            if (next_wal != nullptr) {
              util::Status logged = next_wal->Append(record);
              if (!logged.ok()) return fail_rotation(logged);
            }
            if (listener_ != nullptr) carried.push_back(std::move(record));
          }
          DP_CHECK(next_log->Append({false, new_id, shard, entry.point}));
          ++tail_inserts;
          continue;
        }
        // Writer-side validation guarantees the target survived the
        // folded window, so it maps into the new space (a tail insert
        // replayed above, else a base survivor or folded insert via
        // the closed-form remap).
        size_t new_id = 0;
        if (const auto tail_mapped = tail_map.find(entry.id);
            tail_mapped != tail_map.end()) {
          new_id = tail_mapped->second;
        } else {
          new_id = id_remap.At(entry.id);
        }
        uint32_t shard = 0;
        if (new_id < next_base) {
          shard = ShardForId(next_generation->database(), new_id);
        } else {
          shard = tail_shard.at(new_id);
        }
        if (next_wal != nullptr || listener_ != nullptr) {
          std::string record = EncodeWalRemove<P>(new_id, shard);
          if (next_wal != nullptr) {
            util::Status logged = next_wal->Append(record);
            if (!logged.ok()) return fail_rotation(logged);
          }
          if (listener_ != nullptr) carried.push_back(std::move(record));
        }
        DP_CHECK(next_log->Append({true, new_id, shard, P{}}));
        tail_removed.insert(new_id);
      }
      if (durable) {
        util::Status synced = next_wal->Sync();
        if (!synced.ok()) return fail_rotation(synced);
        util::Status renamed =
            env_->RenameFile(tmp_snapshot_path, snapshot_path);
        if (!renamed.ok()) return fail_rotation(renamed);
        util::Status dir_synced = env_->SyncDir(wal_dir_);
        if (!dir_synced.ok()) return fail_rotation(dir_synced);
      }
      writer_generation_ = next_generation;
      writer_side_ = nullptr;
      auto next = std::make_shared<const State>(
          State{std::move(next_generation), next_log, nullptr});
      state_.store(std::move(next));
      log_ = std::move(next_log);
      writer_base_size_ = next_base;
      writer_inserts_ = tail_inserts;
      writer_removed_ = std::move(tail_removed);
      writer_insert_shard_.clear();
      for (const auto& [new_id, shard] : tail_shard) {
        writer_insert_shard_.emplace(new_id, shard);
      }
      published_generation_.store(new_generation, std::memory_order_relaxed);
      published_delta_depth_.store(log_->committed(),
                                   std::memory_order_relaxed);
      // A swap remaps ids, so cached result sets keyed on the old
      // numbering must stop serving: bump the mutation clock even
      // though the live point set is unchanged.
      mutation_clock_.fetch_add(1, std::memory_order_relaxed);
      if (durable) {
        if (wal_ != nullptr) wal_->Close();  // old log is about to retire
        wal_ = std::move(next_wal);
        wal_generation_ = new_generation;
      }
      if (listener_ != nullptr) {
        listener_->OnRotate(new_generation, end, std::move(carried));
      }
      if (compactions_ != nullptr) compactions_->Increment();
      if (compaction_seconds_ != nullptr) {
        compaction_seconds_->Record(
            Seconds(compact_start, std::chrono::steady_clock::now()));
      }
      if (compaction_folded_entries_ != nullptr) {
        compaction_folded_entries_->Record(static_cast<double>(end));
      }
      if (compaction_shards_rebuilt_ != nullptr) {
        compaction_shards_rebuilt_->Add(stats.shards_rebuilt);
      }
      if (compaction_shards_shared_ != nullptr) {
        compaction_shards_shared_->Add(stats.shards_shared);
      }
    }
    stats.seconds = Seconds(compact_start, std::chrono::steady_clock::now());
    {
      std::lock_guard<std::mutex> stats_lock(compaction_stats_mutex_);
      last_compaction_stats_ = stats;
    }
    if (durable) {
      env_->DeleteFile(StorePath(WalFileName(old_generation)));
      env_->DeleteFile(StorePath(SnapshotFileName(old_generation)));
    }
    return util::Status::OK();
  }

  /// Schedules Compact() on the store's background thread and returns
  /// immediately; at most one background compaction is pending at a
  /// time (further calls are no-ops until it settles).  A failed
  /// attempt is retried with capped exponential backoff (10/20/40 ms,
  /// four attempts total) so a transient fault — a failed fsync, a
  /// momentarily full disk — does not permanently wedge
  /// auto-compaction; every failed attempt counts in
  /// live_compaction_failures_total, and the sequence's final status
  /// lands in last_background_compact_status().
  void CompactAsync() {
    bool expected = false;
    if (!compact_pending_.compare_exchange_strong(expected, true)) return;
    compact_pool_.Submit([this]() {
      constexpr int kAttempts = 4;
      constexpr std::chrono::milliseconds kBaseBackoff{10};
      util::Status status = Compact();
      for (int attempt = 1; !status.ok() && attempt < kAttempts; ++attempt) {
        std::this_thread::sleep_for(kBaseBackoff * (1 << (attempt - 1)));
        status = Compact();
      }
      {
        std::lock_guard<std::mutex> lock(background_status_mutex_);
        background_compact_status_ = status;
      }
      compact_pending_.store(false);
      // Writes that landed during the fold (and were carried over as
      // the new log's tail) found compact_pending_ set and could not
      // re-arm the trigger — re-check here so a threshold-sized tail
      // folds without waiting for the next write.
      if (status.ok() && auto_compact_threshold_ != 0 &&
          delta_entries() >= auto_compact_threshold_) {
        CompactAsync();
      }
    });
  }

  /// Blocks until every scheduled background compaction has finished.
  /// Call from the owning thread only (ThreadPool::Wait contract).
  void WaitForCompaction() { compact_pool_.Wait(); }

  /// Final status of the most recent background compaction sequence
  /// (OK initially, and again once a later sequence succeeds).
  util::Status last_background_compact_status() const {
    std::lock_guard<std::mutex> lock(background_status_mutex_);
    return background_compact_status_;
  }

  /// Accounting of the most recent successful compaction — how many
  /// shards it rebuilt vs shared, and the build work it spent.
  LiveCompactionStats last_compaction_stats() const {
    std::lock_guard<std::mutex> lock(compaction_stats_mutex_);
    return last_compaction_stats_;
  }

  // -------------------------------------------------------- accessors

  /// Current generation number (starts at 1, +1 per compaction).  A
  /// relaxed atomic mirror of the published state — no pin, no slot
  /// lock — so serving layers can tag cache entries per request.
  uint64_t generation_number() const {
    return published_generation_.load(std::memory_order_relaxed);
  }
  /// Pending delta entries (inserts + removes) awaiting compaction.
  /// Mirror of the current log's committed counter, readable without
  /// pinning; paired with generation_number() it identifies the
  /// serving (generation, delta window) to within one racing write.
  size_t delta_entries() const {
    return published_delta_depth_.load(std::memory_order_relaxed);
  }
  /// Monotone write clock: +1 per acked Insert/Remove and +1 per
  /// generation swap.  Two equal readings bracket a window in which the
  /// set of visible (id, point) pairs cannot have changed, which is
  /// exactly the validity condition for serving a cached result set.
  uint64_t mutation_clock() const {
    return mutation_clock_.load(std::memory_order_relaxed);
  }
  /// Monotone removal clock: +1 per acked Remove.  Inserts only shrink
  /// true k-th distances and compactions preserve the live point set,
  /// so a cached k-th-distance upper bound stays valid exactly while
  /// this clock is unchanged.
  uint64_t remove_clock() const {
    return remove_clock_.load(std::memory_order_relaxed);
  }
  /// Live points in the current view.
  size_t size() const { return Pin().live_size(); }

  const metric::Metric<P>& metric() const { return metric_; }
  size_t shard_count() const { return shard_count_; }
  /// The residual index spec every generation is built from.
  const std::string& index_spec() const { return index_spec_; }
  uint64_t seed() const { return seed_; }
  size_t delta_scan_limit() const { return delta_scan_limit_; }
  size_t auto_compact_threshold() const { return auto_compact_threshold_; }
  /// True when the store persists (spec carried `wal_dir`).  The next
  /// two are only meaningful then — the serving layer uses them to
  /// read snapshot files for replication.
  bool durable() const { return env_ != nullptr; }
  storage::Env* env() const { return env_; }
  const std::string& wal_dir() const { return wal_dir_; }
  size_t build_threads() const { return build_threads_; }

 private:
  LiveDatabase(std::shared_ptr<const Generation<P>> generation,
               metric::Metric<P> metric, size_t shard_count,
               std::string index_spec, uint64_t seed,
               index::LiveSpecOptions live, LiveOptions options)
      : metric_(std::move(metric)),
        shard_count_(shard_count),
        index_spec_(std::move(index_spec)),
        seed_(seed),
        delta_scan_limit_(
            std::min(live.delta_scan_limit, DeltaLog<P>::kCapacity)),
        auto_compact_threshold_(live.auto_compact_threshold),
        delta_index_min_(live.delta_index_min),
        side_spec_(SideSpecString(live)),
        build_threads_(options.build_threads),
        writer_base_size_(generation->size()),
        log_(std::make_shared<DeltaLog<P>>()),
        engine_(options.query_threads) {
    TrackGeneration(generation);
    published_generation_.store(generation->number(),
                                std::memory_order_relaxed);
    writer_generation_ = generation;
    state_.store(std::make_shared<const State>(
        State{std::move(generation), log_, nullptr}));
    if (options.metrics != nullptr) EnableMetrics(options.metrics);
  }

  /// The registry spec the per-shard delta side-indexes are built
  /// with: the delta_index knob, given its k when the knob is a bare
  /// name of a spec that takes one.  (Spec option values are
  /// comma-free, so a knob value can carry at most one inline option —
  /// e.g. "delta_index=distperm-prefix:prefix=2".)
  static std::string SideSpecString(const index::LiveSpecOptions& live) {
    std::string spec = live.delta_index;
    if (spec.find(':') == std::string::npos &&
        (spec == "laesa" || spec == "iaesa" || spec == "distperm" ||
         spec == "distperm-prefix")) {
      spec += ":k=" + std::to_string(live.delta_index_k);
    }
    return spec;
  }

  // ------------------------------------------------------- durability

  /// Open() for specs carrying `wal_dir`: a directory with no snapshot
  /// opens fresh (generation 1 over `data`, snapshot written, WAL
  /// started); a directory holding a store recovers it (newest valid
  /// snapshot + WAL replay).  See the Open() doc comment for the
  /// contract.
  static util::Result<std::unique_ptr<LiveDatabase>> OpenDurable(
      std::vector<P> data, const metric::Metric<P>& metric,
      size_t shard_count, const std::string& index_spec, uint64_t seed,
      const index::LiveSpecOptions& live, LiveOptions options) {
    storage::Env* env =
        options.env != nullptr ? options.env : storage::Env::Default();
    util::Result<storage::FsyncPolicy> policy =
        storage::ParseFsyncPolicy(live.fsync);
    if (!policy.ok()) return policy.status();
    DP_RETURN_IF_ERROR(env->CreateDir(live.wal_dir));
    util::Result<std::vector<std::string>> listing =
        env->ListDir(live.wal_dir);
    if (!listing.ok()) return listing.status();
    std::vector<uint64_t> snapshots;
    for (const std::string& name : listing.value()) {
      bool is_snapshot = false;
      uint64_t generation = 0;
      if (ParseStoreFileName(name, &is_snapshot, &generation) &&
          is_snapshot) {
        snapshots.push_back(generation);
      }
    }
    std::sort(snapshots.rbegin(), snapshots.rend());  // newest first

    if (snapshots.empty()) {
      // Fresh store.  Ordering: the snapshot is published before the
      // WAL opens, so a crash anywhere in here leaves either nothing
      // (re-open fresh) or a recoverable generation 1.
      util::Result<std::shared_ptr<const Generation<P>>> generation =
          Generation<P>::Build(std::move(data), metric, shard_count,
                               index_spec, seed, /*number=*/1,
                               options.build_threads);
      if (!generation.ok()) return generation.status();
      std::unique_ptr<LiveDatabase> db(new LiveDatabase(
          std::move(generation).value(), metric, shard_count, index_spec,
          seed, live, options));
      db->AttachStorage(env, live.wal_dir, policy.value());
      DP_RETURN_IF_ERROR(db->WriteSnapshotTimed(
          *db->state_.load()->generation,
          db->StorePath(SnapshotFileName(1)), /*atomic=*/true));
      DP_RETURN_IF_ERROR(db->OpenWalForGeneration(1, /*truncate=*/true,
                                                  /*first_seq=*/1));
      db->DeleteStrayStoreFiles(listing.value(), /*keep_generation=*/1);
      return db;
    }

    // Recovery.
    if (!data.empty()) {
      return util::Status::InvalidArgument(
          "LiveDatabase: opening an existing durable store requires empty "
          "seed data (the on-disk store IS the data)");
    }
    util::Status last_error = util::Status::IoError(
        "LiveDatabase: no loadable snapshot in " + live.wal_dir);
    std::shared_ptr<const Generation<P>> generation;
    for (uint64_t gen : snapshots) {
      auto loaded = ReadGenerationSnapshot<P>(
          env, live.wal_dir + "/" + SnapshotFileName(gen), metric,
          shard_count, index_spec, seed, options.build_threads);
      if (loaded.ok()) {
        generation = std::move(loaded).value();
        break;
      }
      last_error = loaded.status();
      // InvalidArgument is an identity mismatch (wrong spec/seed/shard
      // count), not corruption: refuse instead of falling back to an
      // older snapshot that would mismatch the same way.
      if (last_error.code() == util::StatusCode::kInvalidArgument) {
        return last_error;
      }
    }
    if (generation == nullptr) return last_error;

    const uint64_t gen_number = generation->number();
    std::unique_ptr<LiveDatabase> db(new LiveDatabase(
        std::move(generation), metric, shard_count, index_spec, seed, live,
        options));
    db->AttachStorage(env, live.wal_dir, policy.value());

    const std::string wal_path = db->StorePath(WalFileName(gen_number));
    uint64_t next_seq = 1;
    auto contents = storage::ReadWal(env, wal_path, /*first_seq=*/1);
    if (contents.ok()) {
      if (contents.value().torn_tail) {
        // A frame the crash tore in half; everything before it is
        // intact, and under fsync=always everything acked is before it.
        DP_RETURN_IF_ERROR(
            env->TruncateFile(wal_path, contents.value().valid_bytes));
      }
      for (const storage::WalRecord& record : contents.value().records) {
        auto op = DecodeWalRecord<P>(record.payload);
        if (!op.ok()) return op.status();
        DP_RETURN_IF_ERROR(db->ApplyRecoveredOp(std::move(op).value()));
      }
      if (!contents.value().records.empty()) {
        next_seq = contents.value().records.back().seq + 1;
      }
      if (db->recovery_replayed_ != nullptr) {
        db->recovery_replayed_->Add(contents.value().records.size());
      }
    } else if (contents.status().code() != util::StatusCode::kNotFound) {
      // A missing WAL is fine (a crash between snapshot publication and
      // WAL creation: zero replay); any other read error is fatal.
      return contents.status();
    }
    {
      // Replay bypassed the write path's side-index upkeep; catch up
      // once so a recovered store serves with the same side set a live
      // store of the same window would have.
      std::lock_guard<std::mutex> lock(db->write_mutex_);
      db->MaybeRebuildSideIndexLocked();
    }
    DP_RETURN_IF_ERROR(
        db->OpenWalForGeneration(gen_number, /*truncate=*/false, next_seq));
    db->DeleteStrayStoreFiles(listing.value(), gen_number);
    return db;
  }

  void AttachStorage(storage::Env* env, std::string wal_dir,
                     storage::FsyncPolicy policy) {
    env_ = env;
    wal_dir_ = std::move(wal_dir);
    fsync_policy_ = policy;
  }

  std::string StorePath(const std::string& name) const {
    return wal_dir_ + "/" + name;
  }

  /// WriteGenerationSnapshot timed into snapshot_write_seconds.
  util::Status WriteSnapshotTimed(const Generation<P>& generation,
                                  const std::string& path, bool atomic) {
    const auto start = std::chrono::steady_clock::now();
    util::Status status =
        WriteGenerationSnapshot<P>(env_, path, generation, atomic);
    if (status.ok() && snapshot_seconds_ != nullptr) {
      snapshot_seconds_->Record(
          Seconds(start, std::chrono::steady_clock::now()));
    }
    return status;
  }

  /// Opens (or continues) wal-<generation> as the store's writer.
  util::Status OpenWalForGeneration(uint64_t generation, bool truncate,
                                    uint64_t first_seq) {
    storage::WalWriter::Options wal_options;
    wal_options.policy = fsync_policy_;
    wal_options.instruments = wal_instruments_;
    auto opened =
        storage::WalWriter::Open(env_, StorePath(WalFileName(generation)),
                                 truncate, first_seq, wal_options);
    if (!opened.ok()) return opened.status();
    wal_ = std::move(opened).value();
    wal_generation_ = generation;
    return util::Status::OK();
  }

  /// Re-applies one recovered WAL operation to the writer state.  Runs
  /// before the store serves (single-threaded, wal_ still unset — the
  /// replay must not re-append).  Insert ids are reassigned
  /// deterministically in replay order, reproducing the original
  /// assignment; a remove naming a dead id means the log does not
  /// belong to the snapshot.
  util::Status ApplyRecoveredOp(WalOp<P> op) {
    if (op.shard >= shard_count_) {
      return util::Status::IoError(
          "recovery: wal record routes to shard " +
          std::to_string(op.shard) + " of " + std::to_string(shard_count_) +
          " — the log does not match the snapshot");
    }
    if (!op.is_remove) {
      const size_t id = writer_base_size_ + writer_inserts_;
      if (!log_->Append({false, id, op.shard, std::move(op.point)})) {
        return util::Status::OutOfRange(
            "recovery: delta log capacity exceeded during replay");
      }
      ++writer_inserts_;
      writer_insert_shard_.emplace(id, op.shard);
      published_delta_depth_.store(log_->committed(),
                                   std::memory_order_relaxed);
      mutation_clock_.fetch_add(1, std::memory_order_relaxed);
      return util::Status::OK();
    }
    const size_t id = static_cast<size_t>(op.id);
    if (id >= writer_base_size_ + writer_inserts_ ||
        writer_removed_.count(id) != 0) {
      return util::Status::IoError(
          "recovery: wal removes id " + std::to_string(id) +
          " that is not live — the log does not match the snapshot");
    }
    if (!log_->Append({true, id, op.shard, P{}})) {
      return util::Status::OutOfRange(
          "recovery: delta log capacity exceeded during replay");
    }
    writer_removed_.insert(id);
    published_delta_depth_.store(log_->committed(),
                                 std::memory_order_relaxed);
    mutation_clock_.fetch_add(1, std::memory_order_relaxed);
    remove_clock_.fetch_add(1, std::memory_order_relaxed);
    return util::Status::OK();
  }

  /// Deletes store files of other generations and .tmp leftovers —
  /// orphans of a crashed rotation (see CompactPrefix).  Best-effort.
  void DeleteStrayStoreFiles(const std::vector<std::string>& listing,
                             uint64_t keep_generation) {
    for (const std::string& name : listing) {
      bool is_snapshot = false;
      uint64_t generation = 0;
      if (ParseStoreFileName(name, &is_snapshot, &generation)) {
        if (generation != keep_generation) env_->DeleteFile(StorePath(name));
        continue;
      }
      if (name.size() > 4 &&
          name.compare(name.size() - 4, 4, ".tmp") == 0) {
        env_->DeleteFile(StorePath(name));
      }
    }
  }

  /// Wires the store's instruments and the built-in engine into
  /// `registry`; called from the constructor when LiveOptions names a
  /// registry.
  void EnableMetrics(obs::MetricsRegistry* registry) {
    registry_ = registry;
    inserts_ = registry->GetCounter("live_inserts_total");
    removes_ = registry->GetCounter("live_removes_total");
    backpressure_ = registry->GetCounter("live_backpressure_total");
    compactions_ = registry->GetCounter("live_compactions_total");
    compaction_failures_ =
        registry->GetCounter("live_compaction_failures_total");
    compaction_seconds_ = registry->GetHistogram("live_compaction_seconds");
    compaction_folded_entries_ =
        registry->GetHistogram("live_compaction_folded_entries");
    compaction_shards_rebuilt_ =
        registry->GetCounter("live_compaction_shards_rebuilt_total");
    compaction_shards_shared_ =
        registry->GetCounter("live_compaction_shards_shared_total");
    // Durability instruments: registered unconditionally (they stay at
    // zero for in-memory stores) so dashboards see a stable series set.
    wal_instruments_.appends_total = registry->GetCounter("wal_appends_total");
    wal_instruments_.bytes_total = registry->GetCounter("wal_bytes_total");
    wal_instruments_.fsync_seconds =
        registry->GetHistogram("wal_fsync_seconds");
    recovery_replayed_ = registry->GetCounter("recovery_replayed_entries");
    snapshot_seconds_ = registry->GetHistogram("snapshot_write_seconds");
    callback_handles_.push_back(registry->RegisterCallback(
        "live_delta_depth",
        [this]() { return static_cast<double>(delta_entries()); }));
    callback_handles_.push_back(registry->RegisterCallback(
        "live_pinned_generations",
        [this]() { return static_cast<double>(AliveGenerationCount()); }));
    engine_.EnableMetrics(registry);
  }

  /// Remembers a generation so the pinned-generation gauge can count
  /// how many are still alive (the serving one plus every retired
  /// generation kept alive by an in-flight pin).
  void TrackGeneration(
      const std::shared_ptr<const Generation<P>>& generation) {
    std::lock_guard<std::mutex> lock(generations_mutex_);
    tracked_generations_.erase(
        std::remove_if(
            tracked_generations_.begin(), tracked_generations_.end(),
            [](const std::weak_ptr<const Generation<P>>& tracked) {
              return tracked.expired();
            }),
        tracked_generations_.end());
    tracked_generations_.push_back(generation);
  }

  size_t AliveGenerationCount() const {
    std::lock_guard<std::mutex> lock(generations_mutex_);
    size_t alive = 0;
    for (const auto& tracked : tracked_generations_) {
      if (!tracked.expired()) ++alive;
    }
    return alive;
  }

  static double Seconds(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  }

  /// Everything a query needs from one pinned delta window: the alive
  /// inserts (in id order) and the removed ids, built in one scan.
  struct Overlay {
    std::vector<const typename DeltaLog<P>::Entry*> inserts;
    std::unordered_set<size_t> removed;
    size_t removed_base = 0;  ///< removed ids below the base size
  };

  static Overlay BuildOverlay(const State& state, size_t end) {
    Overlay overlay;
    const size_t base_size = state.generation->size();
    const DeltaLog<P>& log = *state.log;
    for (size_t i = 0; i < end; ++i) {
      const typename DeltaLog<P>::Entry& entry = log.entry(i);
      if (!entry.is_remove) continue;
      overlay.removed.insert(entry.id);
      if (entry.id < base_size) ++overlay.removed_base;
    }
    for (size_t i = 0; i < end; ++i) {
      const typename DeltaLog<P>::Entry& entry = log.entry(i);
      if (entry.is_remove || overlay.removed.count(entry.id) != 0) continue;
      overlay.inserts.push_back(&entry);
    }
    return overlay;
  }

  /// Post-fold id of a surviving pre-fold id, answered on demand in
  /// O(log removals) from the routed shape instead of an O(n) survivor
  /// map: base survivors keep their shard-relative order minus the
  /// removals before them, and folded inserts (at most one per folded
  /// window entry) are recorded explicitly.  Folding a skewed window
  /// must not pay a full-database pass just to remap the log tail.
  struct FoldIdRemap {
    size_t base_size = 0;
    std::vector<size_t> old_offsets;  ///< pre-fold shard offsets
    std::vector<size_t> new_offsets;  ///< post-fold slice offsets
    std::vector<size_t> removed_base;  ///< sorted removed base ids
    std::unordered_map<size_t, size_t> folded_inserts;

    size_t At(size_t old_id) const {
      if (old_id >= base_size) {
        const auto it = folded_inserts.find(old_id);
        DP_CHECK(it != folded_inserts.end());
        return it->second;
      }
      size_t s = old_offsets.size() - 1;
      while (old_offsets[s] > old_id) --s;
      const auto lo = std::lower_bound(removed_base.begin(),
                                       removed_base.end(), old_offsets[s]);
      const auto hi = std::lower_bound(removed_base.begin(),
                                       removed_base.end(), old_id);
      return new_offsets[s] + (old_id - old_offsets[s]) -
             static_cast<size_t>(hi - lo);
    }
  };

  /// The routed layout's shape — per-shard logical slice sizes and
  /// dirtiness — computed without copying a single point.  Lets the
  /// fold decide which shards to rebuild (and whether to rebalance)
  /// before paying to materialize anything beyond the dirty slices,
  /// which is what keeps a skewed fold O(dirty) instead of O(n).
  /// When requested, also emits the FoldIdRemap — everything it needs
  /// falls out of the same overlay walk.
  static void RoutedShape(const State& state, size_t end,
                          std::vector<size_t>* sizes,
                          std::vector<bool>* dirty, FoldIdRemap* remap) {
    const Overlay overlay = BuildOverlay(state, end);
    const ShardedDatabase<P>& db = state.generation->database();
    const size_t shard_count = db.shard_count();
    const size_t base_size = state.generation->size();
    sizes->assign(shard_count, 0);
    dirty->assign(shard_count, false);
    std::vector<size_t> removed_in_shard(shard_count, 0);
    for (size_t s = 0; s < shard_count; ++s) {
      (*sizes)[s] = db.shard(s).size();
    }
    for (const size_t id : overlay.removed) {
      if (id >= base_size) continue;  // insert-then-remove in the window
      size_t s = shard_count - 1;
      while (db.shard_offset(s) > id) --s;
      --(*sizes)[s];
      ++removed_in_shard[s];
      (*dirty)[s] = true;
    }
    for (const auto* entry : overlay.inserts) {
      ++(*sizes)[entry->shard];
      (*dirty)[entry->shard] = true;
    }
    if (remap == nullptr) return;

    remap->base_size = base_size;
    remap->old_offsets.resize(shard_count);
    remap->new_offsets.resize(shard_count);
    size_t next = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      remap->old_offsets[s] = db.shard_offset(s);
      remap->new_offsets[s] = next;
      next += (*sizes)[s];
    }
    remap->removed_base.reserve(overlay.removed.size());
    for (const size_t id : overlay.removed) {
      if (id < base_size) remap->removed_base.push_back(id);
    }
    std::sort(remap->removed_base.begin(), remap->removed_base.end());
    // Folded inserts follow their shard's base survivors, in arrival
    // order — the same ids the eager survivor map used to assign.
    std::vector<size_t> next_insert_id(shard_count);
    for (size_t s = 0; s < shard_count; ++s) {
      next_insert_id[s] = remap->new_offsets[s] + db.shard(s).size() -
                          removed_in_shard[s];
    }
    remap->folded_inserts.reserve(overlay.inserts.size());
    for (const auto* entry : overlay.inserts) {
      remap->folded_inserts.emplace(entry->id,
                                    next_insert_id[entry->shard]++);
    }
  }

  /// The view's dataset routed into per-shard slices: slice s holds
  /// shard s's base survivors in id order, then the alive inserts
  /// routed to s in arrival order.  `dirty[s]` is set when the window
  /// touched shard s (a base removal inside it, or an alive insert
  /// routed to it) — exactly the shards an incremental fold must
  /// rebuild; an insert-then-remove pair inside the window dirties
  /// nothing.  When requested, `id_map` maps every surviving old id to
  /// its position in the slice concatenation (its global id after a
  /// fold — valid for any slicing of the same concatenation, which is
  /// what lets the rebalance fallback reuse it).  A non-null `fill`
  /// restricts point copying to the flagged shards: an unflagged shard
  /// is clean by construction (no removals, no routed inserts), its
  /// slice is left empty, and its id_map entries are still emitted —
  /// the incremental fold passes its dirty set here so clean shards
  /// cost no copies.
  static void MaterializeRouted(const State& state, size_t end,
                                std::vector<std::vector<P>>* slices,
                                std::vector<bool>* dirty,
                                std::unordered_map<size_t, size_t>* id_map,
                                const std::vector<bool>* fill = nullptr) {
    const Overlay overlay = BuildOverlay(state, end);
    const ShardedDatabase<P>& db = state.generation->database();
    const size_t shard_count = db.shard_count();
    slices->assign(shard_count, {});
    dirty->assign(shard_count, false);

    std::vector<std::vector<size_t>> insert_ids(shard_count);
    for (size_t s = 0; s < shard_count; ++s) {
      if (fill != nullptr && !(*fill)[s]) continue;  // clean: no copies
      const std::vector<P>& base = db.shard(s).data();
      const size_t offset = db.shard_offset(s);
      (*slices)[s].reserve(base.size());
      for (size_t i = 0; i < base.size(); ++i) {
        if (overlay.removed.count(offset + i) != 0) {
          (*dirty)[s] = true;
          continue;
        }
        (*slices)[s].push_back(base[i]);
      }
    }
    for (const auto* entry : overlay.inserts) {
      DP_CHECK(entry->shard < shard_count);
      // Copy: pinned readers keep scanning the log entries.
      (*slices)[entry->shard].push_back(entry->point);
      insert_ids[entry->shard].push_back(entry->id);
      (*dirty)[entry->shard] = true;
    }
    if (id_map == nullptr) return;

    size_t next_id = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      const size_t offset = db.shard_offset(s);
      const size_t base_size = db.shard(s).size();
      for (size_t i = 0; i < base_size; ++i) {
        if (overlay.removed.count(offset + i) != 0) continue;
        id_map->emplace(offset + i, next_id++);
      }
      for (size_t insert_id : insert_ids[s]) {
        id_map->emplace(insert_id, next_id++);
      }
    }
  }

  /// The view's final dataset — the concatenation of the routed slices
  /// in shard order — and, when requested, the old-id -> new-position
  /// map compaction uses to remap the log tail.
  static void MaterializeWindow(
      const State& state, size_t end, std::vector<P>* out,
      std::unordered_map<size_t, size_t>* id_map) {
    std::vector<std::vector<P>> slices;
    std::vector<bool> dirty;
    MaterializeRouted(state, end, &slices, &dirty, id_map);
    size_t total = 0;
    for (const auto& slice : slices) total += slice.size();
    out->reserve(total);
    for (auto& slice : slices) {
      for (auto& point : slice) out->push_back(std::move(point));
    }
  }

  /// Owning shard of a live id under the writer's generation: a base
  /// id's owner comes from the slice layout, a pending insert's from
  /// the routing recorded at its append.  Caller holds write_mutex_
  /// and has validated that the id is live.
  uint32_t ShardForLiveIdLocked(size_t id) const {
    if (id < writer_base_size_) {
      return ShardForId(writer_generation_->database(), id);
    }
    auto it = writer_insert_shard_.find(id);
    DP_CHECK(it != writer_insert_shard_.end());
    return it->second;
  }

  /// The shard whose [offset, offset + size) id range holds base `id`.
  static uint32_t ShardForId(const ShardedDatabase<P>& db, size_t id) {
    size_t s = db.shard_count() - 1;
    while (s > 0 && db.shard_offset(s) > id) --s;
    return static_cast<uint32_t>(s);
  }

  /// Rebuilds and republishes the delta side-index set once the window
  /// has grown delta_index_min_ entries past the covered prefix;
  /// caller holds write_mutex_.  Republishes into the SAME (generation,
  /// log) state — queries pinned before or after answer identically
  /// (the side-indexes are exact over covered inserts and everything
  /// uncovered is flat-scanned); only the per-query scan cost moves.
  void MaybeRebuildSideIndexLocked() {
    if (delta_index_min_ == 0) return;
    const size_t committed = log_->committed();
    const size_t covered =
        writer_side_ != nullptr ? writer_side_->covers : 0;
    if (committed < delta_index_min_ ||
        committed - covered < delta_index_min_) {
      return;
    }
    auto side = std::make_shared<SideIndexSet>();
    side->covers = committed;
    side->shards.resize(shard_count_);
    // One scan for the removed set, one to route the alive inserts.
    std::unordered_set<size_t> removed;
    for (size_t i = 0; i < committed; ++i) {
      const typename DeltaLog<P>::Entry& entry = log_->entry(i);
      if (entry.is_remove) removed.insert(entry.id);
    }
    for (size_t i = 0; i < committed; ++i) {
      const typename DeltaLog<P>::Entry& entry = log_->entry(i);
      if (entry.is_remove || removed.count(entry.id) != 0) continue;
      DP_CHECK(entry.shard < shard_count_);
      side->shards[entry.shard].entries.push_back(&entry);
    }
    for (size_t s = 0; s < shard_count_; ++s) {
      auto& shard_side = side->shards[s];
      if (shard_side.entries.empty()) continue;
      std::vector<P> points;
      points.reserve(shard_side.entries.size());
      for (const auto* entry : shard_side.entries) {
        points.push_back(entry->point);
      }
      // A stream distinct from the base shards' (seed_ + 1).  The side
      // spec is exact by default, so this seed never shapes results —
      // it only has to be a valid stream.
      util::Rng rng((seed_ + 1) * 0x9e3779b97f4a7c15ull + s);
      auto built = index::Registry<P>::Global().Create(
          side_spec_, std::move(points), metric_, &rng);
      if (built.ok()) {
        shard_side.index = std::move(built).value();
      }
      // On failure the index stays null and queries scan `entries`
      // flat — a bad delta_index spec degrades serving, never breaks it.
    }
    writer_side_ = std::move(side);
    state_.store(std::make_shared<const State>(
        State{writer_generation_, log_, writer_side_}));
  }

  /// Backpressure check; caller holds write_mutex_.
  util::Status EnsureRoomLocked() {
    if (log_->committed() < delta_scan_limit_) return util::Status::OK();
    if (backpressure_ != nullptr) backpressure_->Increment();
    return util::Status::OutOfRange(
        "LiveDatabase: delta buffer full (delta_scan_limit=" +
        std::to_string(delta_scan_limit_) + "); Compact() to make room");
  }

  /// Fires the background compaction once the delta reaches the
  /// auto_compact_threshold knob; caller holds write_mutex_.
  void MaybeScheduleAutoCompactLocked() {
    if (auto_compact_threshold_ == 0) return;
    if (log_->committed() < auto_compact_threshold_) return;
    CompactAsync();
  }

  const metric::Metric<P> metric_;
  const size_t shard_count_;
  const std::string index_spec_;
  const uint64_t seed_;
  const size_t delta_scan_limit_;
  const size_t auto_compact_threshold_;
  /// Window size at which the delta side-indexes engage (and the
  /// rebuild cadence as the window keeps growing); 0 disables them.
  const size_t delta_index_min_;
  /// Registry spec for the per-shard side-indexes (delta_index knobs).
  const std::string side_spec_;
  const size_t build_threads_;

  /// The serving state; queries pin it through the atomic slot.
  StateSlot state_;

  /// Pin-free mirrors of the published state, for cache tagging and
  /// cheap introspection (/statz).  All monotone except the delta
  /// depth, which resets to the carried tail at each swap.  Relaxed is
  /// sufficient: a tag is read before the pin it guards, so an entry
  /// filled under tag T only ever serves while zero mutations landed
  /// since T — any write between the tag read and a later lookup bumps
  /// the clock before that lookup can observe equality.
  std::atomic<uint64_t> published_generation_{1};
  std::atomic<size_t> published_delta_depth_{0};
  std::atomic<uint64_t> mutation_clock_{0};
  std::atomic<uint64_t> remove_clock_{0};

  /// Writer-side bookkeeping, all under write_mutex_: the current log
  /// (same object as state_'s), the id counters for assignment, and the
  /// removed set for O(1) validation.
  std::mutex write_mutex_;
  size_t writer_base_size_;
  size_t writer_inserts_ = 0;
  std::unordered_set<size_t> writer_removed_;
  std::shared_ptr<DeltaLog<P>> log_;
  /// The generation writes route against — same object as state_'s,
  /// held separately so the write path never takes the state slot.
  std::shared_ptr<const Generation<P>> writer_generation_;
  /// Owning shard of every pending insert (id -> shard), mirrored from
  /// the log so Remove can tag its record in O(1).
  std::unordered_map<size_t, uint32_t> writer_insert_shard_;
  /// The side-index set last published (null before the window reaches
  /// delta_index_min_); kept to compare covers against the log.
  std::shared_ptr<const SideIndexSet> writer_side_;
  /// Replication tap (under write_mutex_, like everything above).
  ReplicationListener* listener_ = nullptr;

  /// Observability (all null/empty when no registry was given): the
  /// write-path counters, the compaction histograms, and the weak list
  /// behind the pinned-generation gauge.
  obs::MetricsRegistry* registry_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* removes_ = nullptr;
  obs::Counter* backpressure_ = nullptr;
  obs::Counter* compactions_ = nullptr;
  obs::Counter* compaction_failures_ = nullptr;
  obs::Histogram* compaction_seconds_ = nullptr;
  obs::Histogram* compaction_folded_entries_ = nullptr;
  obs::Counter* compaction_shards_rebuilt_ = nullptr;
  obs::Counter* compaction_shards_shared_ = nullptr;
  std::vector<uint64_t> callback_handles_;
  mutable std::mutex generations_mutex_;
  std::vector<std::weak_ptr<const Generation<P>>> tracked_generations_;

  /// Compactions are serialized; the swap additionally takes
  /// write_mutex_ for the tail replay.
  std::mutex compact_mutex_;
  std::atomic<bool> compact_pending_{false};
  mutable std::mutex background_status_mutex_;
  util::Status background_compact_status_;
  mutable std::mutex compaction_stats_mutex_;
  LiveCompactionStats last_compaction_stats_;

  /// Built-in engine for the convenience RunBatch(batch) path.
  std::mutex engine_mutex_;
  QueryEngine<P> engine_;

  /// Durable-store state; all unset for in-memory stores.  `env_` is
  /// borrowed (LiveOptions contract: it outlives the store); `wal_` is
  /// written under write_mutex_ and read by the destructor after every
  /// other thread has drained.
  storage::Env* env_ = nullptr;
  std::string wal_dir_;
  storage::FsyncPolicy fsync_policy_ = storage::FsyncPolicy::kBatched;
  std::unique_ptr<storage::WalWriter> wal_;
  uint64_t wal_generation_ = 0;
  storage::WalInstruments wal_instruments_;
  obs::Counter* recovery_replayed_ = nullptr;
  obs::Histogram* snapshot_seconds_ = nullptr;

  /// Background compaction worker.  Declared last: destroyed first, so
  /// a draining compaction task never touches dead members.
  util::ThreadPool compact_pool_{1};
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_LIVE_DATABASE_H_
