// Synthetic string dataset generators.
//
// MarkovWordGenerator produces dictionary-like word lists: an order-1
// letter Markov chain with Zipf-skewed stationary frequencies, seeded per
// "language", gives words that cluster the way natural-language
// dictionaries do under edit distance.  DnaSequences produces gene-like
// data: a handful of ancestral sequences plus point-mutated descendants,
// which reproduces the very low intrinsic dimensionality the paper
// reports for the listeria database.

#ifndef DISTPERM_DATASET_STRING_GEN_H_
#define DISTPERM_DATASET_STRING_GEN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace distperm {
namespace dataset {

/// Parameters of a synthetic "language".
struct LanguageProfile {
  std::string name;         ///< used to seed the transition structure
  size_t alphabet = 26;     ///< letters 'a'.. ('a' + alphabet - 1)
  double mean_length = 9.0; ///< mean word length
  double sd_length = 3.0;   ///< word length standard deviation
};

/// Order-1 Markov chain over a lowercase alphabet.
class MarkovWordGenerator {
 public:
  /// Builds the transition matrix deterministically from the profile.
  explicit MarkovWordGenerator(const LanguageProfile& profile);

  /// Generates one word using `rng`.
  std::string NextWord(util::Rng* rng) const;

  /// Generates `n` distinct words (a dictionary), sorted.
  std::vector<std::string> Dictionary(size_t n, util::Rng* rng) const;

 private:
  LanguageProfile profile_;
  // row-major [alphabet+1][alphabet]: row `alphabet` is the start state;
  // entries are cumulative probabilities for O(log a) sampling.
  std::vector<double> cumulative_;
};

/// `n` distinct DNA-like sequences over {a,c,g,t}: `families` ancestral
/// sequences of length in [min_length, max_length], descendants derived
/// by point mutations at rate `mutation_rate` plus occasional
/// insertions/deletions.
std::vector<std::string> DnaSequences(size_t n, size_t families,
                                      size_t min_length, size_t max_length,
                                      double mutation_rate, util::Rng* rng);

}  // namespace dataset
}  // namespace distperm

#endif  // DISTPERM_DATASET_STRING_GEN_H_
