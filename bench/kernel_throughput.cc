// Microbench for the flat data path: raw kernel throughput, end-to-end
// L2 linear-scan speedup over the scalar (pre-flat) path, and the
// distperm candidate-ranking speedup over the original full-ordering
// formulation.  Emits a machine-readable JSON report (BENCH_kernels.json
// schema) next to the human-readable tables.
//
// The "scalar" linear-scan baseline reproduces the seed code exactly:
// a type-erased Metric<Vector> lambda evaluating a sequential
// single-accumulator loop over heap-scattered std::vector points, one
// point at a time.  The flat build is the same index class with a
// kernel-tagged metric, which switches it onto the packed store and the
// blocked kernels.  The distperm baseline reproduces the seed query
// path: per-pair Spearman footrule with on-the-fly permutation
// inversion, bucketed over the full footrule range.
//
// Default run asserts the tentpole claim — >= 2x L2 linear-scan
// throughput at every dim >= 32 — and exits nonzero if it does not
// hold.  --no-strict reports without asserting.  --smoke shrinks the
// workload for CI: correctness checks stay fatal, but the speedup
// threshold is reported without gating (short timings on shared
// runners are too noisy to assert against).
//
// Usage: kernel_throughput [--points=20000] [--queries=64] [--k=10]
//                          [--reps=3] [--seed=7] [--smoke]
//                          [--out=BENCH_kernels.json] [--no-strict]

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/perm_metrics.h"
#include "dataset/flat_vector_store.h"
#include "dataset/vector_gen.h"
#include "index/distperm_index.h"
#include "index/linear_scan.h"
#include "metric/cosine.h"
#include "metric/kernels.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::core::Permutation;
using distperm::dataset::FlatVectorStore;
using distperm::index::DistPermIndex;
using distperm::index::LinearScanIndex;
using distperm::index::QueryStats;
using distperm::index::SearchResult;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Caps the database for one (points, dim) configuration so the packed
// rows stay inside a serving-shard-sized working set (~1 MB, resident
// in a per-core L2).  Without the cap, high dims at the default point
// count time main-memory bandwidth instead of the kernels, which is
// neither path's bottleneck in the engine's sharded regime.
size_t CachePoints(size_t requested, size_t dim) {
  constexpr size_t kWorkingSetBytes = 1u << 20;
  const size_t cap = std::max<size_t>(
      1000, kWorkingSetBytes / (std::max<size_t>(1, dim) * sizeof(double)));
  return std::min(requested, cap);
}

// The seed's L2 path, reproduced call for call: dimension check, a
// sequential single-accumulator squared sum behind its own function
// boundary, and the sqrt wrapper — the structure the seed's
// LpMetric/L2Distance pair executed per evaluation.
__attribute__((noinline)) double ScalarL2SquaredReference(const Vector& a,
                                                          const Vector& b) {
  DP_CHECK_MSG(a.size() == b.size(), "dimension mismatch");
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

__attribute__((noinline)) double ScalarL2Reference(const Vector& a,
                                                   const Vector& b) {
  return std::sqrt(ScalarL2SquaredReference(a, b));
}

struct KernelRow {
  std::string metric;
  size_t dim = 0;
  double scalar_mdist = 0.0;   // million distances/second, naive loop
  double kernel_mdist = 0.0;   // million distances/second, blocked kernel
  double speedup = 0.0;
};

struct ScanRow {
  size_t dim = 0;
  size_t points = 0;
  double scalar_ms = 0.0;
  double flat_ms = 0.0;
  double speedup = 0.0;
  bool counts_match = false;
  bool results_match = false;
};

struct DistPermRow {
  size_t points = 0;
  size_t sites = 0;
  size_t prefix = 0;
  double fraction = 0.0;
  double naive_ms = 0.0;
  double indexed_ms = 0.0;
  double speedup = 0.0;
  bool results_match = false;
};

std::string Fixed(double v, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, v);
  return buffer;
}

// ------------------------------------------------- raw kernel throughput

// Naive sequential per-pair loops in the seed's style (single
// accumulator; max via comparison): the references the blocked kernels
// are measured against.  noinline keeps each a function call, and the
// dispatch is a function pointer selected once outside the timed loop,
// so the baseline times measure the loop itself, not string compares.
__attribute__((noinline)) double NaiveL1(const double* a, const double* b,
                                         size_t dim) {
  double acc = 0.0;
  for (size_t j = 0; j < dim; ++j) acc += std::fabs(a[j] - b[j]);
  return acc;
}
__attribute__((noinline)) double NaiveL2sq(const double* a, const double* b,
                                           size_t dim) {
  double acc = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double d = a[j] - b[j];
    acc += d * d;
  }
  return acc;
}
__attribute__((noinline)) double NaiveLinf(const double* a, const double* b,
                                           size_t dim) {
  double acc = 0.0;
  for (size_t j = 0; j < dim; ++j) {
    const double d = std::fabs(a[j] - b[j]);
    if (d > acc) acc = d;
  }
  return acc;
}
__attribute__((noinline)) double NaiveDot(const double* a, const double* b,
                                          size_t dim) {
  double acc = 0.0;
  for (size_t j = 0; j < dim; ++j) acc += a[j] * b[j];
  return acc;
}

KernelRow BenchKernel(const std::string& name, size_t dim, size_t points,
                      size_t reps, Rng* rng) {
  auto data = distperm::dataset::UniformCube(points, dim, rng);
  FlatVectorStore store(data);
  Vector query(dim);
  for (double& c : query) c = rng->NextDouble();
  std::vector<double> out(points);

  double (*naive_fn)(const double*, const double*, size_t) =
      name == "L1"     ? &NaiveL1
      : name == "L2sq" ? &NaiveL2sq
      : name == "Linf" ? &NaiveLinf
                       : &NaiveDot;
  // Same flat rows for both sides: isolates the win of the unrolled
  // kernels from the win of the storage layout.
  auto naive = [&]() {
    double sink = 0.0;
    for (size_t i = 0; i < points; ++i) {
      sink += naive_fn(query.data(), store.row(i), dim);
    }
    return sink;
  };
  auto blocked = [&]() {
    if (name == "L1") {
      distperm::metric::L1Block(query.data(), store.data(), points,
                                store.stride(), dim, out.data());
    } else if (name == "L2sq") {
      distperm::metric::L2sqBlock(query.data(), store.data(), points,
                                  store.stride(), dim, out.data());
    } else if (name == "Linf") {
      distperm::metric::LInfBlock(query.data(), store.data(), points,
                                  store.stride(), dim, out.data());
    } else {
      distperm::metric::DotBlock(query.data(), store.data(), points,
                                 store.stride(), dim, out.data());
    }
    double sink = 0.0;
    for (double v : out) sink += v;
    return sink;
  };

  volatile double sink = 0.0;
  double naive_best = 1e300, kernel_best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    double t0 = Now();
    sink = sink + naive();
    naive_best = std::min(naive_best, Now() - t0);
    t0 = Now();
    sink = sink + blocked();
    kernel_best = std::min(kernel_best, Now() - t0);
  }

  KernelRow row;
  row.metric = name;
  row.dim = dim;
  row.scalar_mdist = static_cast<double>(points) / naive_best / 1e6;
  row.kernel_mdist = static_cast<double>(points) / kernel_best / 1e6;
  row.speedup = row.kernel_mdist / row.scalar_mdist;
  return row;
}

// -------------------------------------------- L2 linear scan end to end

ScanRow BenchLinearScan(size_t points, size_t dim, size_t queries, size_t k,
                        size_t reps, Rng* rng) {
  auto data = distperm::dataset::UniformCube(points, dim, rng);
  std::vector<Vector> query_points;
  for (size_t q = 0; q < queries; ++q) {
    Vector p(dim);
    for (double& c : p) c = rng->NextDouble();
    query_points.push_back(std::move(p));
  }

  // Scalar baseline: untagged metric forces the point-at-a-time path
  // through the std::function indirection, exactly the seed's scan.
  Metric<Vector> scalar_metric("L2", &ScalarL2Reference);
  LinearScanIndex<Vector> scalar_scan(data, scalar_metric);
  // Flat build: the kernel-tagged metric enables the blocked data path.
  LinearScanIndex<Vector> flat_scan(data,
                                    distperm::metric::LpMetric::L2());

  ScanRow row;
  row.dim = dim;
  row.points = points;
  row.counts_match = true;
  row.results_match = true;
  double scalar_best = 1e300, flat_best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    double t0 = Now();
    for (const Vector& q : query_points) scalar_scan.KnnQuery(q, k);
    scalar_best = std::min(scalar_best, Now() - t0);
    t0 = Now();
    for (const Vector& q : query_points) flat_scan.KnnQuery(q, k);
    flat_best = std::min(flat_best, Now() - t0);
  }
  for (const Vector& q : query_points) {
    QueryStats scalar_stats, flat_stats;
    auto expect = scalar_scan.KnnQuery(q, k, &scalar_stats);
    auto got = flat_scan.KnnQuery(q, k, &flat_stats);
    row.counts_match =
        row.counts_match &&
        scalar_stats.distance_computations == points &&
        flat_stats.distance_computations == points;
    for (size_t i = 0; i < expect.size() && row.results_match; ++i) {
      // Ids must agree; distances agree to the documented kernel
      // tolerance (the 4-lane sum reassociates the scalar reference).
      row.results_match =
          got.size() == expect.size() && got[i].id == expect[i].id &&
          std::fabs(got[i].distance - expect[i].distance) <=
              1e-12 * (1.0 + expect[i].distance);
    }
  }
  row.scalar_ms = scalar_best * 1e3;
  row.flat_ms = flat_best * 1e3;
  row.speedup = scalar_best / flat_best;
  return row;
}

// ------------------------------------- distperm candidate-ranking path

// The seed's query path, reconstructed over the index's public API:
// per-pair footrule with on-the-fly inversion (SpearmanFootrule /
// PrefixFootrule allocate and invert both permutations per pair),
// bucketed over the full footrule range, then the budget verified.
std::vector<SearchResult> NaiveDistPermKnn(
    const DistPermIndex<Vector>& index,
    const std::vector<Permutation>& stored, const Vector& query, size_t k) {
  const auto& sites = index.sites();
  const size_t site_count = sites.size();
  const auto& metric = index.metric();
  std::vector<double> distances(site_count);
  for (size_t j = 0; j < site_count; ++j) {
    distances[j] = metric(sites[j], query);
  }
  const bool full = index.prefix_length() == site_count;
  Permutation query_perm =
      full ? distperm::core::PermutationFromDistances(distances)
           : distperm::core::PermutationPrefixFromDistances(
                 distances, index.prefix_length());
  const size_t max_footrule =
      full ? static_cast<size_t>(distperm::core::MaxFootrule(site_count))
           : site_count * index.prefix_length();
  std::vector<std::vector<uint32_t>> buckets(max_footrule + 1);
  for (size_t i = 0; i < stored.size(); ++i) {
    const int f =
        full ? distperm::core::SpearmanFootrule(query_perm, stored[i])
             : distperm::core::PrefixFootrule(query_perm, stored[i],
                                              site_count);
    buckets[static_cast<size_t>(f)].push_back(static_cast<uint32_t>(i));
  }
  size_t budget = static_cast<size_t>(
      index.fraction() * static_cast<double>(index.size()));
  budget = std::max<size_t>(1, std::min(budget, index.size()));
  distperm::index::KnnCollector collector(k);
  size_t verified = 0;
  for (const auto& bucket : buckets) {
    for (uint32_t id : bucket) {
      if (verified >= budget) {
        auto results = collector.Take();
        return results;
      }
      ++verified;
      collector.Offer(id, metric(index.data()[id], query));
    }
  }
  return collector.Take();
}

DistPermRow BenchDistPerm(size_t points, size_t dim, size_t sites,
                          size_t prefix, double fraction, size_t queries,
                          size_t k, size_t reps, Rng* rng) {
  auto data = distperm::dataset::UniformCube(points, dim, rng);
  Rng site_rng(rng->NextU64());
  DistPermIndex<Vector> index(data, distperm::metric::LpMetric::L2(), sites,
                              &site_rng, fraction, prefix);
  std::vector<Permutation> stored;
  stored.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    stored.push_back(index.StoredPermutation(i));
  }
  std::vector<Vector> query_points;
  for (size_t q = 0; q < queries; ++q) {
    Vector p(dim);
    for (double& c : p) c = rng->NextDouble();
    query_points.push_back(std::move(p));
  }

  DistPermRow row;
  row.points = points;
  row.sites = sites;
  row.prefix = index.prefix_length();
  row.fraction = fraction;
  row.results_match = true;
  double naive_best = 1e300, indexed_best = 1e300;
  for (size_t r = 0; r < reps; ++r) {
    double t0 = Now();
    for (const Vector& q : query_points) NaiveDistPermKnn(index, stored, q, k);
    naive_best = std::min(naive_best, Now() - t0);
    t0 = Now();
    for (const Vector& q : query_points) index.KnnQuery(q, k);
    indexed_best = std::min(indexed_best, Now() - t0);
  }
  for (const Vector& q : query_points) {
    row.results_match = row.results_match &&
                        index.KnnQuery(q, k) ==
                            NaiveDistPermKnn(index, stored, q, k);
  }
  row.naive_ms = naive_best * 1e3;
  row.indexed_ms = indexed_best * 1e3;
  row.speedup = naive_best / indexed_best;
  return row;
}

// ------------------------------------------------------------ reporting

void WriteJson(const std::string& path, size_t points, size_t queries,
               size_t k, size_t reps, uint64_t seed, bool smoke,
               const std::vector<KernelRow>& kernels,
               const std::vector<ScanRow>& scans,
               const std::vector<DistPermRow>& distperms, bool pass) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return;
  }
  out << "{\n";
  out << "  \"schema\": \"BENCH_kernels\",\n";
  out << "  \"config\": {\"points\": " << points
      << ", \"queries\": " << queries << ", \"k\": " << k
      << ", \"reps\": " << reps << ", \"seed\": " << seed
      << ", \"smoke\": " << (smoke ? "true" : "false") << "},\n";
  out << "  \"kernels\": [\n";
  for (size_t i = 0; i < kernels.size(); ++i) {
    const KernelRow& r = kernels[i];
    out << "    {\"metric\": \"" << r.metric << "\", \"dim\": " << r.dim
        << ", \"naive_mdist_per_sec\": " << Fixed(r.scalar_mdist, 2)
        << ", \"kernel_mdist_per_sec\": " << Fixed(r.kernel_mdist, 2)
        << ", \"speedup\": " << Fixed(r.speedup, 3) << "}"
        << (i + 1 < kernels.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"l2_linear_scan\": [\n";
  for (size_t i = 0; i < scans.size(); ++i) {
    const ScanRow& r = scans[i];
    out << "    {\"dim\": " << r.dim << ", \"points\": " << r.points
        << ", \"scalar_ms\": " << Fixed(r.scalar_ms, 3)
        << ", \"flat_ms\": " << Fixed(r.flat_ms, 3)
        << ", \"speedup\": " << Fixed(r.speedup, 3)
        << ", \"counts_match\": " << (r.counts_match ? "true" : "false")
        << ", \"results_match\": " << (r.results_match ? "true" : "false")
        << "}" << (i + 1 < scans.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"distperm_query_path\": [\n";
  for (size_t i = 0; i < distperms.size(); ++i) {
    const DistPermRow& r = distperms[i];
    out << "    {\"points\": " << r.points << ", \"sites\": " << r.sites
        << ", \"prefix\": " << r.prefix
        << ", \"fraction\": " << Fixed(r.fraction, 2)
        << ", \"naive_ms\": " << Fixed(r.naive_ms, 3)
        << ", \"indexed_ms\": " << Fixed(r.indexed_ms, 3)
        << ", \"speedup\": " << Fixed(r.speedup, 3)
        << ", \"results_match\": " << (r.results_match ? "true" : "false")
        << "}" << (i + 1 < distperms.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"pass\": " << (pass ? "true" : "false") << "\n";
  out << "}\n";
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const bool smoke = flags.value().GetBool("smoke", false);
  const size_t points = static_cast<size_t>(
      flags.value().GetInt("points", smoke ? 4000 : 20000));
  const size_t queries = static_cast<size_t>(
      flags.value().GetInt("queries", smoke ? 32 : 64));
  const size_t k = static_cast<size_t>(flags.value().GetInt("k", 10));
  const size_t reps = static_cast<size_t>(
      flags.value().GetInt("reps", smoke ? 4 : 5));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 7));
  const bool strict = !flags.value().GetBool("no-strict", false);
  const std::string out_path =
      flags.value().GetString("out", "BENCH_kernels.json");
  const std::vector<size_t> dims =
      smoke ? std::vector<size_t>{32} : std::vector<size_t>{8, 32, 100};

  Rng rng(seed);

  std::cout << "kernel throughput: n=" << points << ", batch=" << queries
            << " x " << k << "-NN, reps=" << reps
            << (smoke ? " (smoke)" : "") << "\n\n";

  std::vector<KernelRow> kernels;
  distperm::util::TablePrinter ktable;
  ktable.SetHeader({"kernel", "dim", "naive Mdist/s", "blocked Mdist/s",
                    "speedup"});
  for (size_t dim : dims) {
    for (const char* name : {"L1", "L2sq", "Linf", "dot"}) {
      KernelRow row = BenchKernel(name, dim, CachePoints(points, dim),
                                  reps, &rng);
      ktable.AddRow({row.metric, std::to_string(row.dim),
                     Fixed(row.scalar_mdist, 1), Fixed(row.kernel_mdist, 1),
                     Fixed(row.speedup, 2)});
      kernels.push_back(row);
    }
  }
  ktable.Print(std::cout);

  std::cout << "\nL2 linear scan, flat blocked path vs scalar seed path:\n";
  std::vector<ScanRow> scans;
  distperm::util::TablePrinter stable;
  stable.SetHeader({"dim", "scalar ms", "flat ms", "speedup", "counts",
                    "results"});
  bool correctness_ok = true;
  bool speedup_ok = true;
  for (size_t dim : dims) {
    ScanRow row = BenchLinearScan(CachePoints(points, dim), dim, queries, k,
                                  reps, &rng);
    stable.AddRow({std::to_string(row.dim), Fixed(row.scalar_ms, 2),
                   Fixed(row.flat_ms, 2), Fixed(row.speedup, 2),
                   row.counts_match ? "OK" : "MISMATCH",
                   row.results_match ? "OK" : "MISMATCH"});
    scans.push_back(row);
    correctness_ok =
        correctness_ok && row.counts_match && row.results_match;
    if (dim >= 32 && row.speedup < 2.0) speedup_ok = false;
  }
  stable.Print(std::cout);

  std::cout << "\ndistperm query path, partial selection + O(k) footrule "
               "vs seed formulation:\n";
  std::vector<DistPermRow> distperms;
  distperm::util::TablePrinter dtable;
  dtable.SetHeader({"n", "sites", "prefix", "f", "naive ms", "indexed ms",
                    "speedup", "results"});
  const size_t dp_points = smoke ? points : points / 2;
  const size_t dp_queries = std::max<size_t>(4, queries / 4);
  for (const auto& [sites, prefix] :
       std::vector<std::pair<size_t, size_t>>{{12, 0}, {16, 4}}) {
    DistPermRow row = BenchDistPerm(dp_points, 8, sites, prefix, 0.1,
                                    dp_queries, k, reps, &rng);
    dtable.AddRow({std::to_string(row.points), std::to_string(row.sites),
                   std::to_string(row.prefix), Fixed(row.fraction, 2),
                   Fixed(row.naive_ms, 2), Fixed(row.indexed_ms, 2),
                   Fixed(row.speedup, 2),
                   row.results_match ? "OK" : "MISMATCH"});
    distperms.push_back(row);
    correctness_ok = correctness_ok && row.results_match;
  }
  dtable.Print(std::cout);

  const bool pass = correctness_ok && speedup_ok;
  WriteJson(out_path, points, queries, k, reps, seed, smoke, kernels, scans,
            distperms, pass);

  if (!correctness_ok) {
    std::cout << "\nRESULT: FAIL — flat-path results or distance counts "
                 "diverged from the scalar path\n";
    return strict ? 1 : 0;
  }
  if (!speedup_ok) {
    std::cout << "\nRESULT: "
              << (smoke ? "WARN (not gated in --smoke)" : "FAIL")
              << " — L2 linear-scan speedup at dim >= 32 fell below 2x\n";
    return (strict && !smoke) ? 1 : 0;
  }
  std::cout << "\nRESULT: PASS — counts and results match the scalar "
               "path; L2 linear-scan speedup >= 2x at dim >= 32\n";
  return 0;
}
