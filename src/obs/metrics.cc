#include "obs/metrics.h"

#include <algorithm>
#include <sstream>

namespace distperm {
namespace obs {

namespace internal {

size_t ThreadCellSlot() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) & (kCellCount - 1);
  return slot;
}

namespace {

/// Splices an extra label into a series name that may already carry a
/// label set: `h` + `le="x"` -> `h{le="x"}`; `h{a="b"}` + `le="x"` ->
/// `h{a="b",le="x"}`.
std::string SpliceLabel(const std::string& name, const std::string& label) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + "{" + label + "}";
  std::string out = name.substr(0, name.size() - 1);
  out += ",";
  out += label;
  out += "}";
  return out;
}

/// Base name with its label set stripped (`h{a="b"}` -> `h`), for the
/// `_sum` / `_count` / `_bucket` suffix grammar.
std::string BaseName(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

std::string LabelSet(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? "" : name.substr(brace);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os.precision(9);
  os << v;
  return os.str();
}

}  // namespace

}  // namespace internal

double Histogram::BucketUpperBound(size_t i) {
  if (i == 0) return kMinValue;
  if (i >= kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return kMinValue * std::pow(10.0, static_cast<double>(i) /
                                        static_cast<double>(
                                            kBucketsPerDecade));
}

size_t Histogram::BucketIndex(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN
  const double position =
      std::log10(value / kMinValue) * static_cast<double>(kBucketsPerDecade);
  const size_t bucket = 1 + static_cast<size_t>(position);
  return std::min(bucket, kBucketCount - 1);
}

uint64_t Histogram::Snapshot::count() const {
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  return total;
}

double Histogram::Snapshot::mean() const {
  const uint64_t n = count();
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double Histogram::Snapshot::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(n)));
  rank = std::min(std::max<uint64_t>(rank, 1), n);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // The overflow bucket has no finite upper bound; report its
      // lower edge so readouts stay finite.
      if (i == kBucketCount - 1) return BucketUpperBound(i - 1);
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kBucketCount - 2);  // unreachable
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snapshot;
  for (size_t i = 0; i < kBucketCount; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  for (const auto& cell : sum_cells_) {
    snapshot.sum += cell.value.load(std::memory_order_relaxed);
  }
  return snapshot;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    return nullptr;
  }
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    return nullptr;
  }
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    return nullptr;
  }
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

uint64_t MetricsRegistry::RegisterCallback(
    const std::string& name, std::function<double()> callback) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t handle = next_callback_handle_++;
  callbacks_[name].push_back({handle, std::move(callback)});
  return handle;
}

void MetricsRegistry::UnregisterCallback(uint64_t handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = callbacks_.begin(); it != callbacks_.end();) {
    auto& entries = it->second;
    entries.erase(std::remove_if(entries.begin(), entries.end(),
                                 [handle](const CallbackEntry& e) {
                                   return e.handle == handle;
                                 }),
                  entries.end());
    it = entries.empty() ? callbacks_.erase(it) : std::next(it);
  }
}

std::string MetricsRegistry::TextExposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "# distperm metrics registry \"" << name_ << "\"\n";
  for (const auto& [name, counter] : counters_) {
    os << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << name << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, entries] : callbacks_) {
    double total = 0.0;
    for (const CallbackEntry& entry : entries) total += entry.callback();
    os << name << " " << internal::FormatDouble(total) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snapshot = histogram->Snap();
    const std::string base = internal::BaseName(name);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (snapshot.buckets[i] == 0) continue;
      cumulative += snapshot.buckets[i];
      const double bound = Histogram::BucketUpperBound(i);
      const std::string le =
          std::isinf(bound) ? "+Inf" : internal::FormatDouble(bound);
      os << internal::SpliceLabel(base + "_bucket" + internal::LabelSet(name),
                                  "le=\"" + le + "\"")
         << " " << cumulative << "\n";
    }
    os << internal::SpliceLabel(base + "_bucket" + internal::LabelSet(name),
                                "le=\"+Inf\"")
       << " " << cumulative << "\n";
    os << base << "_sum" << internal::LabelSet(name) << " "
       << internal::FormatDouble(snapshot.sum) << "\n";
    os << base << "_count" << internal::LabelSet(name) << " " << cumulative
       << "\n";
  }
  return os.str();
}

std::string MetricsRegistry::JsonExposition() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"registry\": \"" << internal::JsonEscape(name_) << "\"";
  os << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    os << (first ? "" : ", ") << "\"" << internal::JsonEscape(name)
       << "\": " << counter->Value();
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    os << (first ? "" : ", ") << "\"" << internal::JsonEscape(name)
       << "\": " << gauge->Value();
    first = false;
  }
  for (const auto& [name, entries] : callbacks_) {
    double total = 0.0;
    for (const CallbackEntry& entry : entries) total += entry.callback();
    os << (first ? "" : ", ") << "\"" << internal::JsonEscape(name)
       << "\": " << internal::FormatDouble(total);
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snapshot = histogram->Snap();
    os << (first ? "" : ", ") << "\"" << internal::JsonEscape(name)
       << "\": {\"count\": " << snapshot.count()
       << ", \"sum\": " << internal::FormatDouble(snapshot.sum)
       << ", \"mean\": " << internal::FormatDouble(snapshot.mean())
       << ", \"p50\": " << internal::FormatDouble(snapshot.Quantile(0.50))
       << ", \"p99\": " << internal::FormatDouble(snapshot.Quantile(0.99))
       << ", \"p999\": " << internal::FormatDouble(snapshot.Quantile(0.999))
       << "}";
    first = false;
  }
  os << "}}";
  return os.str();
}

}  // namespace obs
}  // namespace distperm
