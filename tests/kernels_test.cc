// Tests for the vectorized distance kernels (metric/kernels.h), the
// flat vector store (dataset/flat_vector_store.h), and the kernel
// tagging carried by Metric<Vector>.
//
// Tolerance contract, as documented in kernels.h: the kernels
// accumulate in four independent lanes combined as
// (acc0 + acc1) + (acc2 + acc3), which reassociates the naive
// sequential sum, and their translation unit is compiled for the host
// CPU, where the compiler may contract mul + add into FMA.  Both
// effects perturb the sum by at most a few ULP — the tests below pin a
// relative bound of 1e-13, orders of magnitude tighter than any
// distance comparison in the library — and cannot cause divergence
// inside the library because every code path calls the same compiled
// kernel symbols (see ScalarEntryPointsDelegateToKernels and the
// flat-vs-scalar index tests in flat_path_test.cc).  L-infinity (max)
// and the block-min helper involve no additions, so they must match
// the sequential reference exactly.

#include <cmath>
#include <cstdint>
#include <vector>

#include "dataset/flat_vector_store.h"
#include "gtest/gtest.h"
#include "metric/cosine.h"
#include "metric/kernels.h"
#include "metric/lp.h"
#include "metric/metric.h"
#include "util/rng.h"

namespace distperm {
namespace {

using metric::Vector;
using metric::VectorKernelKind;

const size_t kDims[] = {1, 3, 8, 32, 100};

Vector RandomVector(size_t dim, util::Rng* rng) {
  Vector v(dim);
  for (double& c : v) c = rng->NextDouble(-1.0, 1.0);
  return v;
}

// Naive sequential references: single accumulator, seed summation order.
double RefL1(const Vector& a, const Vector& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}
double RefL2sq(const Vector& a, const Vector& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}
double RefLInf(const Vector& a, const Vector& b) {
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = std::fabs(a[i] - b[i]);
    if (d > best) best = d;
  }
  return best;
}
double RefDot(const Vector& a, const Vector& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

TEST(Kernels, RawMatchesSequentialReferenceWithinTolerance) {
  util::Rng rng(11);
  for (size_t dim : kDims) {
    for (int rep = 0; rep < 20; ++rep) {
      Vector a = RandomVector(dim, &rng);
      Vector b = RandomVector(dim, &rng);
      const double tol = 1e-13;
      EXPECT_NEAR(metric::L1Raw(a.data(), b.data(), dim), RefL1(a, b),
                  tol * (1.0 + RefL1(a, b)))
          << "dim " << dim;
      EXPECT_NEAR(metric::L2sqRaw(a.data(), b.data(), dim), RefL2sq(a, b),
                  tol * (1.0 + RefL2sq(a, b)))
          << "dim " << dim;
      EXPECT_NEAR(metric::DotRaw(a.data(), b.data(), dim), RefDot(a, b),
                  tol * (1.0 + std::fabs(RefDot(a, b))))
          << "dim " << dim;
      // max is associative: exact equality for any lane count.
      EXPECT_EQ(metric::LInfRaw(a.data(), b.data(), dim), RefLInf(a, b))
          << "dim " << dim;
    }
  }
}

TEST(Kernels, BlockMatchesRawBitExactly) {
  util::Rng rng(13);
  for (size_t dim : kDims) {
    std::vector<Vector> points;
    for (int i = 0; i < 37; ++i) points.push_back(RandomVector(dim, &rng));
    dataset::FlatVectorStore store(points);
    Vector query = RandomVector(dim, &rng);
    std::vector<double> out(points.size());

    metric::L1Block(query.data(), store.data(), store.size(),
                    store.stride(), dim, out.data());
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(out[i], metric::L1Raw(query.data(), store.row(i), dim));
      EXPECT_EQ(out[i],
                metric::L1Raw(query.data(), points[i].data(), dim));
    }
    metric::L2sqBlock(query.data(), store.data(), store.size(),
                      store.stride(), dim, out.data());
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(out[i],
                metric::L2sqRaw(query.data(), points[i].data(), dim));
    }
    metric::LInfBlock(query.data(), store.data(), store.size(),
                      store.stride(), dim, out.data());
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(out[i],
                metric::LInfRaw(query.data(), points[i].data(), dim));
    }
    metric::DotBlock(query.data(), store.data(), store.size(),
                     store.stride(), dim, out.data());
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(out[i],
                metric::DotRaw(query.data(), points[i].data(), dim));
    }
  }
}

TEST(Kernels, ScalarEntryPointsDelegateToKernels) {
  // L1Distance & co. are the same computation as the raw kernels, so
  // every code path in the library sees identical distance bits.
  util::Rng rng(14);
  for (size_t dim : kDims) {
    Vector a = RandomVector(dim, &rng);
    Vector b = RandomVector(dim, &rng);
    EXPECT_EQ(metric::L1Distance(a, b),
              metric::L1Raw(a.data(), b.data(), dim));
    EXPECT_EQ(metric::L2DistanceSquared(a, b),
              metric::L2sqRaw(a.data(), b.data(), dim));
    EXPECT_EQ(metric::L2Distance(a, b),
              std::sqrt(metric::L2sqRaw(a.data(), b.data(), dim)));
    EXPECT_EQ(metric::LInfDistance(a, b),
              metric::LInfRaw(a.data(), b.data(), dim));
    EXPECT_EQ(metric::AngleDistanceDense(a, b),
              metric::AngleFromParts(
                  metric::DotRaw(a.data(), b.data(), dim),
                  std::sqrt(metric::DotRaw(a.data(), a.data(), dim)),
                  std::sqrt(metric::DotRaw(b.data(), b.data(), dim))));
  }
}

TEST(Kernels, MinRawMatchesSequentialScan) {
  util::Rng rng(15);
  for (size_t n : {1u, 2u, 5u, 64u, 257u}) {
    std::vector<double> x(n);
    for (double& v : x) v = rng.NextDouble(-10.0, 10.0);
    double expect = x[0];
    for (double v : x) expect = std::min(expect, v);
    EXPECT_EQ(metric::MinRaw(x.data(), n), expect) << n;
  }
  EXPECT_EQ(metric::MinRaw(nullptr, 0), 0.0);
}

TEST(FlatVectorStore, RoundTripsValuesExactly) {
  util::Rng rng(16);
  for (size_t dim : kDims) {
    std::vector<Vector> points;
    for (int i = 0; i < 19; ++i) points.push_back(RandomVector(dim, &rng));
    dataset::FlatVectorStore store(points);
    ASSERT_EQ(store.size(), points.size());
    ASSERT_EQ(store.dim(), dim);
    for (size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(store.ToVector(i), points[i]);
      dataset::VectorView view = store.view(i);
      ASSERT_EQ(view.dim, dim);
      for (size_t j = 0; j < dim; ++j) EXPECT_EQ(view[j], points[i][j]);
    }
  }
}

TEST(FlatVectorStore, RowsAreCacheLineAlignedAndPadded) {
  util::Rng rng(17);
  for (size_t dim : kDims) {
    std::vector<Vector> points;
    for (int i = 0; i < 5; ++i) points.push_back(RandomVector(dim, &rng));
    dataset::FlatVectorStore store(points);
    EXPECT_EQ(store.stride() % 8, 0u);
    EXPECT_GE(store.stride(), dim);
    for (size_t i = 0; i < store.size(); ++i) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(store.row(i)) %
                    dataset::FlatVectorStore::kRowAlignBytes,
                0u);
      for (size_t j = dim; j < store.stride(); ++j) {
        EXPECT_EQ(store.row(i)[j], 0.0);
      }
    }
  }
}

TEST(FlatVectorStore, EmptyDatabaseYieldsEmptyStore) {
  dataset::FlatVectorStore store{std::vector<Vector>{}};
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.AllocatedBytes(), 0u);
}

TEST(MetricTagging, KernelKindSurvivesTypeErasure) {
  EXPECT_EQ(metric::Metric<Vector>(metric::LpMetric::L1()).vector_kernel(),
            VectorKernelKind::kL1);
  EXPECT_EQ(metric::Metric<Vector>(metric::LpMetric::L2()).vector_kernel(),
            VectorKernelKind::kL2);
  EXPECT_EQ(
      metric::Metric<Vector>(metric::LpMetric::LInf()).vector_kernel(),
      VectorKernelKind::kLInf);
  EXPECT_EQ(
      metric::Metric<Vector>(metric::DenseAngleMetric()).vector_kernel(),
      VectorKernelKind::kAngle);
  // General p has no specialized kernel.
  EXPECT_EQ(metric::Metric<Vector>(metric::LpMetric(3.0)).vector_kernel(),
            VectorKernelKind::kNone);
  // A bare lambda metric is untagged.
  metric::Metric<Vector> lambda("custom", [](const Vector& a,
                                             const Vector& b) {
    return metric::L2Distance(a, b);
  });
  EXPECT_EQ(lambda.vector_kernel(), VectorKernelKind::kNone);
}

TEST(LpMetricDispatch, ConstructionTimeDispatchMatchesLpDistance) {
  // The p == 1 / 2 / inf dispatch is hoisted into the constructor; the
  // functor must still agree with the free function for every order.
  util::Rng rng(18);
  const double inf = std::numeric_limits<double>::infinity();
  for (size_t dim : kDims) {
    Vector a = RandomVector(dim, &rng);
    Vector b = RandomVector(dim, &rng);
    for (double p : {1.0, 2.0, 3.0, 4.5, inf}) {
      metric::LpMetric m(p);
      EXPECT_EQ(m(a, b), metric::LpDistance(a, b, p)) << "p=" << p;
    }
    EXPECT_EQ(metric::LpMetric::L1()(a, b), metric::L1Distance(a, b));
    EXPECT_EQ(metric::LpMetric::L2()(a, b), metric::L2Distance(a, b));
    EXPECT_EQ(metric::LpMetric::LInf()(a, b), metric::LInfDistance(a, b));
  }
}

}  // namespace
}  // namespace distperm
