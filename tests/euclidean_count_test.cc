#include "core/euclidean_count.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cake.h"
#include "util/big_uint.h"

namespace distperm {
namespace core {
namespace {

using util::BigUint;

// The paper's Table 1, verbatim: N_{d,2}(k) for d = 1..10, k = 2..12.
constexpr uint64_t kTable1[10][11] = {
    {2, 4, 7, 11, 16, 22, 29, 37, 46, 56, 67},
    {2, 6, 18, 46, 101, 197, 351, 583, 916, 1376, 1992},
    {2, 6, 24, 96, 326, 932, 2311, 5119, 10366, 19526, 34662},
    {2, 6, 24, 120, 600, 2556, 9080, 27568, 73639, 177299, 392085},
    {2, 6, 24, 120, 720, 4320, 22212, 94852, 342964, 1079354, 3029643},
    {2, 6, 24, 120, 720, 5040, 35280, 212976, 1066644, 4496284, 16369178},
    {2, 6, 24, 120, 720, 5040, 40320, 322560, 2239344, 12905784, 62364908},
    {2, 6, 24, 120, 720, 5040, 40320, 362880, 3265920, 25659360, 167622984},
    {2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800, 36288000, 318540960},
    {2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800, 39916800, 439084800},
};

TEST(EuclideanCount, ReproducesTable1Exactly) {
  EuclideanCounter counter;
  for (int d = 1; d <= 10; ++d) {
    for (int k = 2; k <= 12; ++k) {
      EXPECT_EQ(counter.Count64(d, k), kTable1[d - 1][k - 2])
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(EuclideanCount, BaseCases) {
  EuclideanCounter counter;
  for (int d = 0; d <= 6; ++d) EXPECT_EQ(counter.Count64(d, 1), 1u);
  for (int k = 1; k <= 8; ++k) EXPECT_EQ(counter.Count64(0, k), 1u);
}

TEST(EuclideanCount, OneDimensionIsBisectorCountPlusOne) {
  // N_{1,2}(k) = C(k,2) + 1: k-1 sites on a line give C(k,2) bisector
  // points splitting the line.
  EuclideanCounter counter;
  for (int k = 1; k <= 30; ++k) {
    EXPECT_EQ(counter.Count64(1, k),
              static_cast<uint64_t>(k) * (k - 1) / 2 + 1);
  }
}

TEST(EuclideanCount, FactorialLowerTriangle) {
  // Theorem 6: N_{d,2}(k) = k! whenever d >= k - 1.
  EuclideanCounter counter;
  for (int k = 1; k <= 10; ++k) {
    for (int d = k - 1; d <= 12; ++d) {
      EXPECT_EQ(BigUint(counter.Count64(d, k)),
                BigUint::Factorial(static_cast<uint64_t>(k)))
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(EuclideanCount, NeverExceedsFactorial) {
  EuclideanCounter counter;
  for (int d = 0; d <= 8; ++d) {
    for (int k = 1; k <= 12; ++k) {
      EXPECT_LE(counter.Count(d, k),
                BigUint::Factorial(static_cast<uint64_t>(k)));
    }
  }
}

TEST(EuclideanCount, MonotoneInBothArguments) {
  EuclideanCounter counter;
  for (int d = 1; d <= 8; ++d) {
    for (int k = 2; k <= 12; ++k) {
      EXPECT_GE(counter.Count(d, k), counter.Count(d - 1, k));
      EXPECT_GT(counter.Count(d, k), counter.Count(d, k - 1));
    }
  }
}

TEST(EuclideanCount, Corollary8UpperBound) {
  // N_{d,2}(k) <= k^{2d}.
  EuclideanCounter counter;
  for (int d = 0; d <= 8; ++d) {
    for (int k = 1; k <= 16; ++k) {
      EXPECT_LE(counter.Count(d, k), EuclideanCounter::UpperBound(d, k))
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(EuclideanCount, BoundedByCakeCuttingOfBisectors) {
  // N_{d,2}(k) <= S_d(C(k,2)): the bisectors, even in special position,
  // cannot produce more cells than general-position hyperplanes.
  EuclideanCounter counter;
  for (int d = 1; d <= 6; ++d) {
    for (int k = 2; k <= 12; ++k) {
      uint64_t bisectors = static_cast<uint64_t>(k) * (k - 1) / 2;
      EXPECT_LE(counter.Count(d, k), CakeCount(d, bisectors))
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(EuclideanCount, AsymptoticLeadingTermConverges) {
  // Corollary 8: N_{d,2}(k) ~ k^{2d} / (2^d d!).  At k = 400 the ratio
  // should be within a few percent for small d.
  EuclideanCounter counter;
  for (int d = 1; d <= 3; ++d) {
    double exact = counter.Count(d, 400).ToDouble();
    double estimate = EuclideanCounter::AsymptoticEstimate(d, 400);
    EXPECT_NEAR(exact / estimate, 1.0, 0.05) << "d=" << d;
  }
}

TEST(EuclideanCount, StorageBitsMatchCeilLog) {
  EuclideanCounter counter;
  EXPECT_EQ(counter.StorageBits(0, 5), 0);   // 1 permutation
  EXPECT_EQ(counter.StorageBits(1, 2), 1);   // 2 permutations
  EXPECT_EQ(counter.StorageBits(2, 4), 5);   // 18 -> 5 bits
  EXPECT_EQ(counter.StorageBits(2, 12), 11); // 1992 -> 11 bits
  EXPECT_EQ(counter.StorageBits(10, 12), 29); // 439084800 -> 29 bits
}

TEST(EuclideanCount, StorageBitsGrowLikeDLogK) {
  // Corollary 8: Theta(d log k) bits; check the ratio is stable in d.
  EuclideanCounter counter;
  int bits_d2 = counter.StorageBits(2, 64);
  int bits_d4 = counter.StorageBits(4, 64);
  int bits_d8 = counter.StorageBits(8, 64);
  EXPECT_NEAR(static_cast<double>(bits_d4) / bits_d2, 2.0, 0.35);
  EXPECT_NEAR(static_cast<double>(bits_d8) / bits_d4, 2.0, 0.35);
}

TEST(EuclideanCount, LargeArgumentsStayExact) {
  // d = 12, k = 40 overflows 64 bits; the BigUint path must agree with
  // the recurrence applied to BigUints directly.
  EuclideanCounter counter;
  const BigUint& value = counter.Count(12, 40);
  BigUint expected = counter.Count(12, 39) +
                     counter.Count(11, 39) * BigUint(39);
  EXPECT_EQ(value, expected);
  EXPECT_GT(value, BigUint(~uint64_t{0}));  // really needs bignum
}

TEST(EuclideanCount, ConvenienceFunctionMatchesCounter) {
  EuclideanCounter counter;
  EXPECT_EQ(EuclideanPermutationCount(3, 7), counter.Count(3, 7));
}

}  // namespace
}  // namespace core
}  // namespace distperm
