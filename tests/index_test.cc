// Correctness tests for every search index: each exact index must return
// exactly what the linear scan returns, on vector and string spaces; the
// approximate permutation index must be exact at fraction = 1 and must
// degrade gracefully below it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "index/aesa.h"
#include "index/distperm_index.h"
#include "index/gh_tree.h"
#include "index/iaesa.h"
#include "index/laesa.h"
#include "index/linear_scan.h"
#include "index/vp_tree.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/rng.h"

namespace distperm {
namespace index {
namespace {

using metric::Vector;

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

// Builds every exact index over the same data.
std::vector<std::unique_ptr<SearchIndex<Vector>>> BuildExactVectorIndexes(
    const std::vector<Vector>& data, uint64_t seed) {
  std::vector<std::unique_ptr<SearchIndex<Vector>>> indexes;
  util::Rng r1(seed), r2(seed), r3(seed), r4(seed), r5(seed);
  indexes.push_back(std::make_unique<LinearScanIndex<Vector>>(data, L2()));
  indexes.push_back(std::make_unique<AesaIndex<Vector>>(data, L2()));
  indexes.push_back(
      std::make_unique<LaesaIndex<Vector>>(data, L2(), 8, &r1));
  indexes.push_back(
      std::make_unique<IaesaIndex<Vector>>(data, L2(), 6, &r2));
  indexes.push_back(std::make_unique<VpTreeIndex<Vector>>(data, L2(), &r3));
  indexes.push_back(std::make_unique<GhTreeIndex<Vector>>(data, L2(), &r4));
  return indexes;
}

class ExactIndexAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExactIndexAgreementTest, RangeQueriesMatchLinearScan) {
  auto [seed, dim] = GetParam();
  util::Rng rng(11000 + seed);
  auto data = dataset::UniformCube(300, static_cast<size_t>(dim), &rng);
  auto indexes = BuildExactVectorIndexes(data, 500 + seed);
  auto& reference = *indexes[0];
  for (int q = 0; q < 10; ++q) {
    Vector query(dim);
    for (auto& coord : query) coord = rng.NextDouble(-0.2, 1.2);
    for (double radius : {0.0, 0.05, 0.2, 0.5, 2.0}) {
      auto expected = reference.RangeQuery(query, radius);
      for (size_t i = 1; i < indexes.size(); ++i) {
        auto actual = indexes[i]->RangeQuery(query, radius);
        EXPECT_EQ(actual, expected)
            << indexes[i]->name() << " radius=" << radius;
      }
    }
  }
}

TEST_P(ExactIndexAgreementTest, KnnQueriesMatchLinearScan) {
  auto [seed, dim] = GetParam();
  util::Rng rng(12000 + seed);
  auto data = dataset::UniformCube(250, static_cast<size_t>(dim), &rng);
  auto indexes = BuildExactVectorIndexes(data, 700 + seed);
  auto& reference = *indexes[0];
  for (int q = 0; q < 10; ++q) {
    Vector query(dim);
    for (auto& coord : query) coord = rng.NextDouble();
    for (size_t k : {1u, 3u, 10u, 250u, 500u}) {
      auto expected = reference.KnnQuery(query, k);
      for (size_t i = 1; i < indexes.size(); ++i) {
        auto actual = indexes[i]->KnnQuery(query, k);
        EXPECT_EQ(actual, expected) << indexes[i]->name() << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactIndexAgreementTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values(2, 5)));

TEST(ExactIndexes, AgreeOnStringSpace) {
  util::Rng rng(13);
  auto words = dataset::DnaSequences(120, 4, 6, 16, 0.1, &rng);
  metric::Metric<std::string> lev((metric::LevenshteinMetric()));
  LinearScanIndex<std::string> reference(words, lev);
  util::Rng r1(5), r2(5), r3(5);
  LaesaIndex<std::string> laesa(words, lev, 6, &r1);
  VpTreeIndex<std::string> vp(words, lev, &r2);
  GhTreeIndex<std::string> gh(words, lev, &r3);
  AesaIndex<std::string> aesa(words, lev);
  for (int q = 0; q < 8; ++q) {
    const std::string& query = words[rng.NextBounded(words.size())];
    for (double radius : {0.0, 2.0, 5.0}) {
      auto expected = reference.RangeQuery(query, radius);
      EXPECT_EQ(laesa.RangeQuery(query, radius), expected);
      EXPECT_EQ(vp.RangeQuery(query, radius), expected);
      EXPECT_EQ(gh.RangeQuery(query, radius), expected);
      EXPECT_EQ(aesa.RangeQuery(query, radius), expected);
    }
    auto expected = reference.KnnQuery(query, 5);
    EXPECT_EQ(laesa.KnnQuery(query, 5), expected);
    EXPECT_EQ(vp.KnnQuery(query, 5), expected);
    EXPECT_EQ(gh.KnnQuery(query, 5), expected);
    EXPECT_EQ(aesa.KnnQuery(query, 5), expected);
  }
}

TEST(ExactIndexes, HandleDuplicatePoints) {
  std::vector<Vector> data(40, Vector{0.5, 0.5});
  for (int i = 0; i < 10; ++i) {
    data.push_back({0.1 * i, 0.2});
  }
  auto indexes = BuildExactVectorIndexes(data, 77);
  auto& reference = *indexes[0];
  Vector query = {0.5, 0.5};
  auto expected_range = reference.RangeQuery(query, 0.0);
  EXPECT_EQ(expected_range.size(), 40u);
  auto expected_knn = reference.KnnQuery(query, 45);
  for (size_t i = 1; i < indexes.size(); ++i) {
    EXPECT_EQ(indexes[i]->RangeQuery(query, 0.0), expected_range)
        << indexes[i]->name();
    EXPECT_EQ(indexes[i]->KnnQuery(query, 45), expected_knn)
        << indexes[i]->name();
  }
}

TEST(KnnCollectorTest, KeepsBestK) {
  KnnCollector collector(3);
  collector.Offer(0, 5.0);
  collector.Offer(1, 1.0);
  collector.Offer(2, 3.0);
  collector.Offer(3, 2.0);
  collector.Offer(4, 10.0);
  auto results = collector.Take();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].id, 1u);
  EXPECT_EQ(results[1].id, 3u);
  EXPECT_EQ(results[2].id, 2u);
}

TEST(KnnCollectorTest, TieBreaksTowardLowerId) {
  KnnCollector collector(2);
  collector.Offer(5, 1.0);
  collector.Offer(2, 1.0);
  collector.Offer(9, 1.0);
  auto results = collector.Take();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].id, 2u);
  EXPECT_EQ(results[1].id, 5u);
}

TEST(KnnCollectorTest, ZeroK) {
  KnnCollector collector(0);
  collector.Offer(1, 1.0);
  EXPECT_TRUE(collector.Take().empty());
}

TEST(DistPerm, ExactAtFullFraction) {
  util::Rng rng(14);
  auto data = dataset::UniformCube(200, 3, &rng);
  util::Rng site_rng(15);
  DistPermIndex<Vector> index(data, L2(), 8, &site_rng, /*fraction=*/1.0);
  LinearScanIndex<Vector> reference(data, L2());
  for (int q = 0; q < 10; ++q) {
    Vector query(3);
    for (auto& coord : query) coord = rng.NextDouble();
    EXPECT_EQ(index.KnnQuery(query, 5), reference.KnnQuery(query, 5));
    EXPECT_EQ(index.RangeQuery(query, 0.3),
              reference.RangeQuery(query, 0.3));
  }
}

TEST(DistPerm, ApproximateRecallReasonable) {
  util::Rng rng(16);
  auto data = dataset::UniformCube(2000, 3, &rng);
  util::Rng site_rng(17);
  DistPermIndex<Vector> index(data, L2(), 12, &site_rng, /*fraction=*/0.2);
  LinearScanIndex<Vector> reference(data, L2());
  size_t hits = 0, total = 0;
  for (int q = 0; q < 20; ++q) {
    Vector query(3);
    for (auto& coord : query) coord = rng.NextDouble();
    auto expected = reference.KnnQuery(query, 10);
    auto actual = index.KnnQuery(query, 10);
    for (const auto& e : expected) {
      ++total;
      for (const auto& a : actual) {
        if (a.id == e.id) {
          ++hits;
          break;
        }
      }
    }
  }
  // Permutation prefiltering at 20% of the database should recover well
  // over half of the true 10-NN on smooth data.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.6);
}

TEST(DistPerm, StorageMatchesPackedWidth) {
  util::Rng rng(18);
  auto data = dataset::UniformCube(100, 2, &rng);
  util::Rng site_rng(19);
  DistPermIndex<Vector> index(data, L2(), 5, &site_rng);
  // ceil(lg 5!) = 7 bits per point.
  EXPECT_EQ(index.IndexBits(), 100u * 7u);
}

TEST(DistPerm, PackedPermutationsDecodeCorrectly) {
  util::Rng rng(20);
  auto data = dataset::UniformCube(60, 2, &rng);
  util::Rng site_rng(21);
  DistPermIndex<Vector> index(data, L2(), 6, &site_rng);
  for (size_t i = 0; i < data.size(); i += 7) {
    EXPECT_EQ(index.DecodePackedPermutation(i), index.StoredPermutation(i));
  }
}

TEST(DistPerm, DistinctCountMatchesDirectCount) {
  util::Rng rng(22);
  auto data = dataset::UniformCube(500, 2, &rng);
  util::Rng site_rng(23);
  DistPermIndex<Vector> index(data, L2(), 6, &site_rng);
  std::unordered_set<uint64_t> seen;
  for (size_t i = 0; i < data.size(); ++i) {
    seen.insert(core::RankPermutation(index.StoredPermutation(i)));
  }
  EXPECT_EQ(index.DistinctPermutationCount(), seen.size());
}

TEST(Counters, QueryCostOrdering) {
  // AESA must use (far) fewer query distance computations than a linear
  // scan; LAESA sits in between; all exact indexes return the truth.
  util::Rng rng(24);
  auto data = dataset::UniformCube(400, 4, &rng);
  LinearScanIndex<Vector> scan(data, L2());
  AesaIndex<Vector> aesa(data, L2());
  util::Rng r1(25);
  LaesaIndex<Vector> laesa(data, L2(), 12, &r1);
  uint64_t scan_cost = 0, aesa_cost = 0, laesa_cost = 0;
  for (int q = 0; q < 20; ++q) {
    Vector query(4);
    for (auto& coord : query) coord = rng.NextDouble();
    scan.ResetQueryCount();
    aesa.ResetQueryCount();
    laesa.ResetQueryCount();
    auto expected = scan.KnnQuery(query, 5);
    EXPECT_EQ(aesa.KnnQuery(query, 5), expected);
    EXPECT_EQ(laesa.KnnQuery(query, 5), expected);
    scan_cost += scan.query_distance_computations();
    aesa_cost += aesa.query_distance_computations();
    laesa_cost += laesa.query_distance_computations();
  }
  EXPECT_LT(aesa_cost, scan_cost / 4);
  EXPECT_LT(laesa_cost, scan_cost);
  EXPECT_EQ(scan_cost, 20u * 400u);
}

TEST(Counters, BuildCostsAccounted) {
  util::Rng rng(26);
  auto data = dataset::UniformCube(100, 2, &rng);
  AesaIndex<Vector> aesa(data, L2());
  EXPECT_EQ(aesa.build_distance_computations(), 100u * 99u / 2u);
  EXPECT_EQ(aesa.query_distance_computations(), 0u);
  LinearScanIndex<Vector> scan(data, L2());
  EXPECT_EQ(scan.build_distance_computations(), 0u);
}

TEST(Indexes, EmptyAndTinyDatabases) {
  std::vector<Vector> one = {{0.5, 0.5}};
  util::Rng r1(1), r2(2), r3(3);
  VpTreeIndex<Vector> vp(one, L2(), &r1);
  GhTreeIndex<Vector> gh(one, L2(), &r2);
  AesaIndex<Vector> aesa(one, L2());
  Vector query = {0.0, 0.0};
  for (auto* idx :
       std::initializer_list<SearchIndex<Vector>*>{&vp, &gh, &aesa}) {
    auto knn = idx->KnnQuery(query, 3);
    ASSERT_EQ(knn.size(), 1u) << idx->name();
    EXPECT_EQ(knn[0].id, 0u);
    EXPECT_EQ(idx->RangeQuery(query, 10.0).size(), 1u);
    EXPECT_TRUE(idx->RangeQuery(query, 0.1).empty());
  }
}

TEST(PivotSelect, MaxMinSpreadsPivots) {
  // On a line, max-min pivots should grab the extremes first.
  std::vector<Vector> data;
  for (int i = 0; i <= 100; ++i) {
    data.push_back({static_cast<double>(i)});
  }
  util::Rng rng(27);
  uint64_t budget = 0;
  auto pivots = MaxMinPivots(data, L2(), 3, &rng, &budget);
  ASSERT_EQ(pivots.size(), 3u);
  EXPECT_EQ(budget, 2u * data.size());
  // After the random first pivot, the farthest point is an endpoint.
  bool has_endpoint = false;
  for (size_t p : pivots) has_endpoint |= (p == 0 || p == 100);
  EXPECT_TRUE(has_endpoint);
  // All distinct.
  EXPECT_NE(pivots[0], pivots[1]);
  EXPECT_NE(pivots[1], pivots[2]);
  EXPECT_NE(pivots[0], pivots[2]);
}

}  // namespace
}  // namespace index
}  // namespace distperm
