// Concurrent batch query engine.
//
// RunBatch validates every QuerySpec (= index::SearchRequest) up front,
// fans the valid ones out as one task per (query, shard) pair onto a
// reusable worker pool, maps shard-local ids to global ids, and merges
// per-shard partials into globally correct answers: for an exact index,
// the merged results are identical to what a single index over the
// whole database would return.  Invalid requests (k = 0, negative
// radius, NaN coordinates, ...) cost nothing and come back with a
// per-query util::Status instead of CHECK-failing the batch.  Metric
// evaluations are accumulated per (query, shard) task in its own
// QueryStats slot and summed after the batch barrier, so concurrency
// never perturbs the paper's cost-model accounting.
//
// Cooperative kNN fan-out: a kNN-mode query whose shard_scheduling is
// kCooperative or kSeedFirst owns one cache-line-padded
// index::SharedSearchBound.  Every shard task reads it as an extra
// pruning cap on entry to each Radius() check and publishes its
// collector's k-th distance as it fills, so the whole fan-out converges
// toward single-index query cost instead of paying shards x the
// pruning-free cost.  kSeedFirst runs one seed shard to completion
// before submitting the rest, which then start from an already-tight
// bound.  For exact indexes the merged results are bit-identical to the
// independent (and to the single-index) answer — only which distances
// get computed changes, never which neighbours come back — because the
// shared bound can only overestimate the global k-th distance.  Which
// evaluations are saved depends on task interleaving, so per-query
// distance counts of cooperative runs are scheduling-dependent;
// kIndependent (the default) keeps the seed behavior of exactly
// reproducible counts.
//
// Distance budgets shard naively by default: each shard task receives
// the request's max_distance_computations unchanged, so a budgeted
// query's total cost is bounded by shards x budget and `truncated[q]`
// reports whether any shard stopped early.  With
// split_distance_budget, the budget is instead ceil-divided across the
// shards (remainder to the first shards, shards whose slice is zero
// skip their search and report truncation), bounding the query's total
// cost by the budget itself.
//
// Allocation behavior: the pool's threads are fixed for the engine's
// lifetime, so the per-thread index::QueryScratch buffers (kernel score
// blocks, candidate rankings, bound orderings, the pooled kNN
// collector) warm up over the first few queries a worker serves; the
// database-sized transient buffers are then reused allocation-free.
// Small fixed-size per-query allocations (site-distance vectors, result
// sets) remain.  The engine itself allocates only the per-batch slot
// arrays sized by |batch| x |shards|.

#ifndef DISTPERM_ENGINE_QUERY_ENGINE_H_
#define DISTPERM_ENGINE_QUERY_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/sharded_database.h"
#include "index/index.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace distperm {
namespace engine {

/// Executes query batches against a ShardedDatabase on a fixed worker
/// pool.  The database is borrowed, not owned, so several engines (e.g.
/// with different thread counts) can serve the same shards.  RunBatch is
/// not reentrant: issue one batch at a time per engine.
///
/// The engine can also run without a bound database: construct with
/// just a thread count and pass the database to RunBatch explicitly.
/// That is the live-ingest serving mode — engine::LiveDatabase pins one
/// immutable engine::Generation with a single atomic acquire of its
/// state slot and hands its ShardedDatabase to RunBatch, so the whole
/// batch executes against that one generation no matter how many
/// compactions swap new generations in while the batch is in flight.
template <typename P>
class QueryEngine {
 public:
  struct BatchOutput {
    /// Per query, the merged results with global ids in canonical
    /// (distance, id) order; kNN results are truncated to k globally.
    /// Empty for queries whose status is not OK.
    std::vector<std::vector<index::SearchResult>> results;
    /// Per query: OK, or why the request was rejected.  Rejected
    /// queries execute no shard task and cost no metric evaluations.
    std::vector<util::Status> statuses;
    /// Per query: true iff at least one shard's search was stopped by
    /// the request's distance budget (results may be incomplete).
    std::vector<bool> truncated;
    /// Per query, metric evaluations summed over its shard tasks.
    std::vector<uint64_t> per_query_distance_computations;
    BatchStats stats;

    /// True iff every query in the batch succeeded.
    bool all_ok() const {
      for (const util::Status& status : statuses) {
        if (!status.ok()) return false;
      }
      return true;
    }
  };

  QueryEngine(const ShardedDatabase<P>* db, size_t thread_count)
      : db_(db), pool_(thread_count) {
    DP_CHECK(db != nullptr);
  }

  /// Unbound engine: just the worker pool.  Every batch must go through
  /// the RunBatch overload that names its database.
  explicit QueryEngine(size_t thread_count)
      : db_(nullptr), pool_(thread_count) {}

  size_t thread_count() const { return pool_.thread_count(); }
  const ShardedDatabase<P>& database() const {
    DP_CHECK(db_ != nullptr);
    return *db_;
  }

  /// Runs the batch against the database bound at construction.
  BatchOutput RunBatch(const std::vector<QuerySpec<P>>& batch) {
    DP_CHECK(db_ != nullptr);
    return RunBatch(*db_, batch);
  }

  /// Runs the batch against `db`, which only needs to stay alive for
  /// the duration of the call.  The caller chooses the snapshot: the
  /// live-ingest path pins one generation and passes its database here,
  /// giving the batch a frozen view while writers and compactions
  /// proceed.
  BatchOutput RunBatch(const ShardedDatabase<P>& db,
                       const std::vector<QuerySpec<P>>& batch) {
    const size_t query_count = batch.size();
    const size_t shard_count = db.shard_count();
    BatchOutput out;
    out.results.resize(query_count);
    out.statuses.resize(query_count);
    out.truncated.assign(query_count, false);
    out.per_query_distance_computations.assign(query_count, 0);
    out.stats.query_count = query_count;
    out.stats.shard_count = shard_count;
    out.stats.thread_count = pool_.thread_count();
    if (query_count == 0) return out;

    // Validate once per query on the calling thread; invalid queries
    // never reach a worker.
    for (size_t q = 0; q < query_count; ++q) {
      out.statuses[q] = index::ValidateRequest(batch[q]);
    }

    // Per-query spec pointers: cooperative queries get one engine-owned
    // request copy with their SharedSearchBound hook installed; every
    // other query references the caller's batch directly, so the
    // default path copies no query points.  (Per-shard copies happen
    // only when a split budget forces a differing field.)
    std::vector<index::SharedSearchBound> bounds(query_count);
    std::vector<const QuerySpec<P>*> specs(query_count);
    size_t cooperative_count = 0;
    for (size_t q = 0; q < query_count; ++q) {
      if (Cooperative(batch[q], shard_count)) ++cooperative_count;
    }
    std::vector<QuerySpec<P>> cooperative_specs;
    cooperative_specs.reserve(cooperative_count);  // addresses must hold
    for (size_t q = 0; q < query_count; ++q) {
      if (Cooperative(batch[q], shard_count)) {
        cooperative_specs.push_back(batch[q]);
        cooperative_specs.back().shared_bound = &bounds[q];
        specs[q] = &cooperative_specs.back();
      } else {
        specs[q] = &batch[q];
      }
    }

    // One slot per (query, shard) task: no two tasks share a slot, so
    // workers never contend on anything but the per-query countdown and
    // (for cooperative queries) the padded shared bound.
    std::vector<index::SearchResponse> partials(query_count * shard_count);
    std::vector<PaddedCounter> tasks_left(query_count);
    for (auto& counter : tasks_left) {
      counter.value.store(shard_count, std::memory_order_relaxed);
    }
    std::vector<double> latencies(query_count, 0.0);
    const auto start = std::chrono::steady_clock::now();

    for (size_t q = 0; q < query_count; ++q) {
      if (!out.statuses[q].ok()) continue;
      if (specs[q]->shard_scheduling == index::ShardScheduling::kSeedFirst &&
          specs[q]->shared_bound != nullptr) {
        // Two-phase: the seed shard task submits the rest of the
        // fan-out when it completes (the pool allows Submit from within
        // a task), so every other shard starts from its bound.
        pool_.Submit([this, &db, &specs, &partials, &tasks_left,
                      &latencies, start, shard_count, q]() {
          RunShardTask(db, specs, partials, tasks_left, latencies, start,
                       shard_count, q, /*s=*/0);
          for (size_t s = 1; s < shard_count; ++s) {
            pool_.Submit([this, &db, &specs, &partials, &tasks_left,
                          &latencies, start, shard_count, q, s]() {
              RunShardTask(db, specs, partials, tasks_left, latencies,
                           start, shard_count, q, s);
            });
          }
        });
        continue;
      }
      for (size_t s = 0; s < shard_count; ++s) {
        pool_.Submit([this, &db, &specs, &partials, &tasks_left,
                      &latencies, start, shard_count, q, s]() {
          RunShardTask(db, specs, partials, tasks_left, latencies, start,
                       shard_count, q, s);
        });
      }
    }
    pool_.Wait();

    std::vector<double> executed_latencies;
    executed_latencies.reserve(query_count);
    for (size_t q = 0; q < query_count; ++q) {
      if (!out.statuses[q].ok()) continue;
      executed_latencies.push_back(latencies[q]);
      std::vector<index::SearchResult> merged;
      size_t total = 0;
      for (size_t s = 0; s < shard_count; ++s) {
        total += partials[q * shard_count + s].results.size();
      }
      merged.reserve(total);
      uint64_t distances = 0;
      bool truncated = false;
      for (size_t s = 0; s < shard_count; ++s) {
        index::SearchResponse& partial = partials[q * shard_count + s];
        // Validation passed on the calling thread, so shard responses
        // are OK by construction; propagate defensively regardless.
        if (!partial.status.ok() && out.statuses[q].ok()) {
          out.statuses[q] = partial.status;
        }
        merged.insert(merged.end(), partial.results.begin(),
                      partial.results.end());
        distances += partial.stats.distance_computations;
        truncated = truncated || partial.truncated;
      }
      index::SortResults(&merged);
      if (batch[q].mode != QueryType::kRange && merged.size() > batch[q].k) {
        merged.resize(batch[q].k);
      }
      out.results[q] = std::move(merged);
      out.truncated[q] = truncated;
      out.per_query_distance_computations[q] = distances;
      out.stats.distance_computations += distances;
    }

    out.stats.wall_seconds = Seconds(start, std::chrono::steady_clock::now());
    out.stats.latency = SummarizeLatencies(std::move(executed_latencies));
    return out;
  }

 private:
  /// Per-query countdown of unfinished shard tasks, padded to a cache
  /// line so adjacent queries' counters never false-share under the
  /// per-task fetch_sub.
  struct alignas(64) PaddedCounter {
    std::atomic<size_t> value{0};
  };

  /// True iff this request runs its shard fan-out cooperatively: a kNN
  /// mode (range queries have nothing to share), more than one shard,
  /// and a cooperative scheduling policy.
  static bool Cooperative(const QuerySpec<P>& spec, size_t shard_count) {
    return spec.shard_scheduling != index::ShardScheduling::kIndependent &&
           spec.mode != QueryType::kRange && shard_count > 1;
  }

  /// Shard s's distance budget: the full request budget by default, or
  /// its ceil-divided slice (remainder to the first shards) under
  /// split_distance_budget.
  static uint64_t ShardBudget(const QuerySpec<P>& spec, size_t s,
                              size_t shard_count) {
    const uint64_t budget = spec.max_distance_computations;
    if (!spec.split_distance_budget || budget == 0) return budget;
    const uint64_t base = budget / shard_count;
    const uint64_t extra = budget % shard_count;
    return base + (s < extra ? 1 : 0);
  }

  /// One (query, shard) task: searches the shard, maps local ids to
  /// global ids, stores the partial, and stamps the query latency when
  /// it is the last of the query's tasks to finish.
  void RunShardTask(const ShardedDatabase<P>& db,
                    const std::vector<const QuerySpec<P>*>& specs,
                    std::vector<index::SearchResponse>& partials,
                    std::vector<PaddedCounter>& tasks_left,
                    std::vector<double>& latencies,
                    std::chrono::steady_clock::time_point start,
                    size_t shard_count, size_t q, size_t s) {
    const QuerySpec<P>& spec = *specs[q];
    index::SearchResponse response;
    const uint64_t budget = ShardBudget(spec, s, shard_count);
    if (spec.max_distance_computations != 0 && budget == 0) {
      // A split budget smaller than the shard count starves this
      // shard entirely: spend nothing, report the truncation.
      response.truncated = true;
    } else if (budget != spec.max_distance_computations) {
      QuerySpec<P> shard_spec = spec;
      shard_spec.max_distance_computations = budget;
      response = db.shard(s).Search(shard_spec);
    } else {
      response = db.shard(s).Search(spec);
    }
    const size_t offset = db.shard_offset(s);
    for (index::SearchResult& r : response.results) r.id += offset;
    partials[q * shard_count + s] = std::move(response);
    // The last shard task to finish stamps the query's latency.
    if (tasks_left[q].value.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      latencies[q] = Seconds(start, std::chrono::steady_clock::now());
    }
  }

  static double Seconds(std::chrono::steady_clock::time_point from,
                        std::chrono::steady_clock::time_point to) {
    return std::chrono::duration<double>(to - from).count();
  }

  const ShardedDatabase<P>* db_;
  util::ThreadPool pool_;
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_QUERY_ENGINE_H_
