#include "core/euclidean_count.h"

#include <cmath>

#include "util/status.h"

namespace distperm {
namespace core {

using util::BigUint;

const BigUint& EuclideanCounter::Count(int dimension, int sites) {
  DP_CHECK_MSG(dimension >= 0, "dimension must be >= 0");
  DP_CHECK_MSG(sites >= 1, "site count must be >= 1");
  size_t d = static_cast<size_t>(dimension);
  size_t k = static_cast<size_t>(sites);
  if (memo_.size() <= d) memo_.resize(d + 1);
  if (memo_[d].size() <= k) memo_[d].resize(k + 1, BigUint(0));
  BigUint& slot = memo_[d][k];
  if (!slot.IsZero()) return slot;

  if (dimension == 0 || sites == 1) {
    slot = BigUint(1);
    return slot;
  }
  // N_{d,2}(k) = N_{d,2}(k-1) + (k-1) * N_{d-1,2}(k-1)
  BigUint value = Count(dimension, sites - 1);
  BigUint cross = Count(dimension - 1, sites - 1);
  cross.MulSmall(static_cast<uint32_t>(sites - 1));
  value += cross;
  slot = value;
  return memo_[d][k];
}

uint64_t EuclideanCounter::Count64(int dimension, int sites) {
  const BigUint& value = Count(dimension, sites);
  return value.ToUint64();
}

int EuclideanCounter::StorageBits(int dimension, int sites) {
  const BigUint& value = Count(dimension, sites);
  if (value <= BigUint(1)) return 0;
  BigUint minus_one = value - BigUint(1);
  return static_cast<int>(minus_one.BitLength());
}

double EuclideanCounter::AsymptoticEstimate(int dimension, int sites) {
  double log_value = 2.0 * dimension * std::log(static_cast<double>(sites)) -
                     dimension * std::log(2.0) -
                     std::lgamma(static_cast<double>(dimension) + 1.0);
  return std::exp(log_value);
}

BigUint EuclideanCounter::UpperBound(int dimension, int sites) {
  return BigUint::Pow(BigUint(static_cast<uint64_t>(sites)),
                      2 * static_cast<uint64_t>(dimension));
}

BigUint EuclideanPermutationCount(int dimension, int sites) {
  EuclideanCounter counter;
  return counter.Count(dimension, sites);
}

}  // namespace core
}  // namespace distperm
