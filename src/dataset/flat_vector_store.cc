#include "dataset/flat_vector_store.h"

#include <algorithm>
#include <cstring>

#include "util/status.h"

namespace distperm {
namespace dataset {

FlatVectorStore::FlatVectorStore(const std::vector<metric::Vector>& points) {
  if (points.empty()) return;
  dim_ = points.front().size();
  DP_CHECK_MSG(dim_ >= 1, "FlatVectorStore requires dimension >= 1");
  for (const metric::Vector& p : points) {
    DP_CHECK_MSG(p.size() == dim_, "FlatVectorStore requires equal dims");
  }
  size_ = points.size();
  constexpr size_t kDoublesPerLine = kRowAlignBytes / sizeof(double);
  stride_ = (dim_ + kDoublesPerLine - 1) / kDoublesPerLine * kDoublesPerLine;

  // stride_ is a multiple of the alignment in doubles, so the total byte
  // count is a multiple of kRowAlignBytes as std::aligned_alloc requires.
  const size_t bytes = size_ * stride_ * sizeof(double);
  double* raw = static_cast<double*>(
      std::aligned_alloc(kRowAlignBytes, bytes));
  DP_CHECK_MSG(raw != nullptr, "FlatVectorStore allocation failed");
  data_.reset(raw);

  for (size_t i = 0; i < size_; ++i) {
    double* row = raw + i * stride_;
    std::memcpy(row, points[i].data(), dim_ * sizeof(double));
    std::fill(row + dim_, row + stride_, 0.0);
  }
}

metric::Vector FlatVectorStore::ToVector(size_t i) const {
  const double* r = row(i);
  return metric::Vector(r, r + dim_);
}

}  // namespace dataset
}  // namespace distperm
