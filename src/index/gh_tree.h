// Generalized-hyperplane tree (Uhlmann 1991).
//
// The other tree baseline from the paper's introduction: each node holds
// two centres; points go to the closer centre's subtree, and a subtree is
// pruned when the query ball cannot cross the generalized hyperplane
// (bisector!) between the two centres — the same objects whose cell
// counts this library studies.

#ifndef DISTPERM_INDEX_GH_TREE_H_
#define DISTPERM_INDEX_GH_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "index/index.h"
#include "util/rng.h"

namespace distperm {
namespace index {

/// Classic GH-tree with exact range and kNN queries.
template <typename P>
class GhTreeIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  GhTreeIndex(std::vector<P> data, metric::Metric<P> metric,
              util::Rng* rng)
      : SearchIndex<P>(std::move(data), std::move(metric)) {
    std::vector<size_t> ids(data_.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = i;
    root_ = Build(ids, rng);
  }

  std::string name() const override { return "gh-tree"; }

  uint64_t IndexBits() const override {
    return node_count_ * (2 * sizeof(size_t) + 2 * sizeof(void*)) * 8;
  }

 protected:
  void SearchImpl(const SearchRequest<P>& request,
                  SearchContext* context) const override {
    SearchNode(root_.get(), request.point, context);
  }

 private:
  struct Node {
    size_t first;        // centre of the `near_first` subtree
    size_t second;       // centre of the other subtree (== first if leaf)
    bool has_second = false;
    std::unique_ptr<Node> near_first;
    std::unique_ptr<Node> near_second;
  };

  std::unique_ptr<Node> Build(std::vector<size_t>& ids, util::Rng* rng) {
    if (ids.empty()) return nullptr;
    ++node_count_;
    auto node = std::make_unique<Node>();
    size_t pick = static_cast<size_t>(rng->NextBounded(ids.size()));
    std::swap(ids[pick], ids.back());
    node->first = ids.back();
    ids.pop_back();
    if (ids.empty()) {
      node->second = node->first;
      return node;
    }
    pick = static_cast<size_t>(rng->NextBounded(ids.size()));
    std::swap(ids[pick], ids.back());
    node->second = ids.back();
    node->has_second = true;
    ids.pop_back();

    std::vector<size_t> near_first_ids, near_second_ids;
    for (size_t id : ids) {
      double d1 = this->BuildDist(data_[node->first], data_[id]);
      double d2 = this->BuildDist(data_[node->second], data_[id]);
      // Tie toward the first centre, mirroring the paper's tie-break.
      (d1 <= d2 ? near_first_ids : near_second_ids).push_back(id);
    }
    node->near_first = Build(near_first_ids, rng);
    node->near_second = Build(near_second_ids, rng);
    return node;
  }

  void SearchNode(const Node* node, const P& query,
                  SearchContext* context) const {
    if (node == nullptr || context->StopAfterBudget()) return;
    double d1 = this->QueryDist(data_[node->first], query, context->stats());
    context->Emit(node->first, d1);
    if (!node->has_second) return;
    if (context->StopAfterBudget()) return;
    double d2 = this->QueryDist(data_[node->second], query,
                                context->stats());
    context->Emit(node->second, d2);
    // A subtree can be skipped when the query ball lies strictly on the
    // other side of the generalized hyperplane: (d1 - d2)/2 > r means no
    // point closer to `first` can be within r.
    if ((d1 - d2) / 2.0 <= context->Radius()) {
      SearchNode(node->near_first.get(), query, context);
    }
    if ((d2 - d1) / 2.0 <= context->Radius()) {
      SearchNode(node->near_second.get(), query, context);
    }
  }

  std::unique_ptr<Node> root_;
  uint64_t node_count_ = 0;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_GH_TREE_H_
