// One generation of a live database: an immutable, refcounted snapshot.
//
// A Generation owns a fully built ShardedDatabase plus the metadata
// needed to rebuild its successor deterministically (index spec, seed,
// shard count) and a monotone generation number.  Generations are
// shared as std::shared_ptr<const Generation>: queries pin the current
// one with a single atomic load, compaction builds the next one off to
// the side, and the swap retires the old generation as soon as the last
// in-flight query drops its reference — no reader ever blocks a writer
// and no writer ever invalidates a reader's view.
//
// Rebuild determinism is the property that makes generations testable:
// Build with the same (data, spec, shard_count, seed) produces a
// bit-identical database at any build_threads (pinned since PR 4), so
// "the compacted generation" and "a fresh ShardedDatabase over the
// equivalent final dataset" are the same object, results included.
//
// Incremental compaction extends that contract per shard: each shard
// records the generation number that last rebuilt it (`epochs()`), and
// a shard whose delta slice was empty is *shared* into the successor by
// shared_ptr, keeping its old epoch.  Because per-shard RNG streams
// depend only on (seed, shard number), the shared shard is bit-identical
// to what a fresh per-slice rebuild would have produced — so the
// incremental generation and BuildSliced over the same slices are the
// same object, epochs aside.

#ifndef DISTPERM_ENGINE_GENERATION_H_
#define DISTPERM_ENGINE_GENERATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/shard_router.h"
#include "engine/sharded_database.h"
#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace engine {

/// Immutable snapshot: shards + indexes + rebuild metadata.  Create
/// through Build / BuildSliced / Assemble, share via shared_ptr.
template <typename P>
class Generation {
 public:
  /// Builds generation `number` over `data` through the index registry
  /// (same contract as ShardedDatabase::BuildFromRegistry, including
  /// per-shard RNG streams derived from `seed`).  Returns the registry
  /// or parser error for bad specs.  Every shard's epoch is `number`.
  static util::Result<std::shared_ptr<const Generation>> Build(
      std::vector<P> data, const metric::Metric<P>& metric,
      size_t shard_count, const std::string& index_spec, uint64_t seed,
      uint64_t number, size_t build_threads = 1) {
    util::Result<ShardedDatabase<P>> built =
        ShardedDatabase<P>::BuildFromRegistry(std::move(data), metric,
                                              shard_count, index_spec,
                                              seed, build_threads);
    if (!built.ok()) return built.status();
    return std::shared_ptr<const Generation>(new Generation(
        std::move(built).value(), index_spec, seed, number,
        std::vector<uint64_t>(shard_count, number)));
  }

  /// Builds generation `number` with every shard rebuilt over its
  /// pre-routed slice — the full-rebuild reference that an incremental
  /// fold must match bit-for-bit over the same slices.
  static util::Result<std::shared_ptr<const Generation>> BuildSliced(
      std::vector<std::vector<P>> slices, const metric::Metric<P>& metric,
      const std::string& index_spec, uint64_t seed, uint64_t number,
      size_t build_threads = 1) {
    const size_t shard_count = slices.size();
    util::Result<ShardedDatabase<P>> built =
        ShardedDatabase<P>::BuildFromRegistrySliced(
            std::move(slices), metric, index_spec, seed, build_threads);
    if (!built.ok()) return built.status();
    return std::shared_ptr<const Generation>(new Generation(
        std::move(built).value(), index_spec, seed, number,
        std::vector<uint64_t>(shard_count, number)));
  }

  /// Wraps an assembled database (shared clean shards + freshly built
  /// dirty shards, see ShardedDatabase::FromShards) as generation
  /// `number`.  `epochs[s]` is the generation that last rebuilt shard
  /// s: `number` for dirty shards, the predecessor's epoch for shared
  /// ones.
  static std::shared_ptr<const Generation> Assemble(
      ShardedDatabase<P> db, std::string index_spec, uint64_t seed,
      uint64_t number, std::vector<uint64_t> epochs) {
    return std::shared_ptr<const Generation>(
        new Generation(std::move(db), std::move(index_spec), seed, number,
                       std::move(epochs)));
  }

  /// Wraps an already-built database as generation `number`.  Used by
  /// snapshot restore (engine/generation_store.h), whose contract is
  /// that `db` is bit-identical to what Build would have produced for
  /// the same (data, spec, shard_count, seed) — either because it was
  /// rebuilt through the registry, or because the index state was
  /// restored verbatim from a snapshot of such a build.  `epochs` is
  /// the recorded per-shard epoch vector; pass empty to default every
  /// shard's epoch to `number` (pre-epoch snapshots).
  static std::shared_ptr<const Generation> Adopt(
      ShardedDatabase<P> db, std::string index_spec, uint64_t seed,
      uint64_t number, std::vector<uint64_t> epochs = {}) {
    if (epochs.empty()) {
      epochs.assign(db.shard_count(), number);
    }
    return std::shared_ptr<const Generation>(
        new Generation(std::move(db), std::move(index_spec), seed, number,
                       std::move(epochs)));
  }

  const ShardedDatabase<P>& database() const { return db_; }

  /// Monotone generation counter (the first built generation is 1).
  uint64_t number() const { return number_; }

  /// Number of points in this generation's base dataset.
  size_t size() const { return db_.size(); }

  const std::string& index_spec() const { return index_spec_; }
  uint64_t seed() const { return seed_; }

  /// Per-shard rebuild epochs: epochs()[s] is the generation number
  /// that last rebuilt shard s (== number() when s was rebuilt this
  /// fold, older when it was shared from the predecessor).  Snapshots
  /// persist this so replicas and crash recovery agree on sharing
  /// decisions exactly.
  const std::vector<uint64_t>& epochs() const { return epochs_; }

  /// Routes a point to its owning shard under this generation's
  /// layout.  Deterministic: derived purely from the shard slices, so
  /// primary, replica, and recovery route identically.
  const ShardRouter<P>& router() const { return router_; }

  /// The base dataset in global-id order — what the next compaction
  /// applies the delta to.
  std::vector<P> CollectData() const { return db_.CollectData(); }

 private:
  Generation(ShardedDatabase<P> db, std::string index_spec, uint64_t seed,
             uint64_t number, std::vector<uint64_t> epochs)
      : db_(std::move(db)),
        index_spec_(std::move(index_spec)),
        seed_(seed),
        number_(number),
        epochs_(std::move(epochs)),
        router_(ShardRouter<P>::ForShards(
            db_.shard_count(),
            [this](size_t s) -> const std::vector<P>& {
              return db_.shard(s).data();
            })) {
    DP_CHECK(epochs_.size() == db_.shard_count());
  }

  const ShardedDatabase<P> db_;
  const std::string index_spec_;
  const uint64_t seed_;
  const uint64_t number_;
  const std::vector<uint64_t> epochs_;
  const ShardRouter<P> router_;
};

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_GENERATION_H_
