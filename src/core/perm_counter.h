// Counting distinct distance permutations in a database (paper Section 5).
//
// This is the measurement the paper's experiments run: pick k sites,
// compute the distance permutation of every database point, and count how
// many distinct permutations occur.  The count is what bounds both the
// index storage cost and the information content of a permutation index.

#ifndef DISTPERM_CORE_PERM_COUNTER_H_
#define DISTPERM_CORE_PERM_COUNTER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/distance_permutation.h"
#include "core/perm_codec.h"
#include "metric/metric.h"
#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace core {

/// Result of a distinct-permutation count over a database.
struct PermCountResult {
  size_t distinct_permutations = 0;  ///< |{Pi_y : y in database}|
  size_t points = 0;                 ///< database size scanned
  uint64_t metric_evaluations = 0;   ///< k * points
};

/// Counts distinct distance permutations of `data` with respect to
/// `sites` under `metric`.  Requires sites.size() <= 20 (64-bit Lehmer
/// keys keep the count exact).
template <typename P>
PermCountResult CountDistinctPermutations(
    const std::vector<P>& data, const std::vector<P>& sites,
    const metric::Metric<P>& metric) {
  DP_CHECK(sites.size() <= kMaxRank64Sites);
  PermCountResult result;
  std::unordered_set<uint64_t> seen;
  std::vector<double> distances(sites.size());
  for (const P& point : data) {
    for (size_t i = 0; i < sites.size(); ++i) {
      distances[i] = metric(sites[i], point);
    }
    seen.insert(RankPermutation(PermutationFromDistances(distances)));
    ++result.points;
    result.metric_evaluations += sites.size();
  }
  result.distinct_permutations = seen.size();
  return result;
}

/// Histogram variant: how many database points carry each permutation.
/// Keys are Lehmer ranks (k <= 20).
template <typename P>
std::unordered_map<uint64_t, size_t> PermutationHistogram(
    const std::vector<P>& data, const std::vector<P>& sites,
    const metric::Metric<P>& metric) {
  DP_CHECK(sites.size() <= kMaxRank64Sites);
  std::unordered_map<uint64_t, size_t> histogram;
  std::vector<double> distances(sites.size());
  for (const P& point : data) {
    for (size_t i = 0; i < sites.size(); ++i) {
      distances[i] = metric(sites[i], point);
    }
    ++histogram[RankPermutation(PermutationFromDistances(distances))];
  }
  return histogram;
}

/// Selects `count` sites uniformly at random from `data` (the selection
/// protocol used by the paper's experiments).
template <typename P>
std::vector<P> SelectRandomSites(const std::vector<P>& data, size_t count,
                                 util::Rng* rng) {
  DP_CHECK(count <= data.size());
  std::vector<size_t> picks = rng->SampleDistinct(data.size(), count);
  std::vector<P> sites;
  sites.reserve(count);
  for (size_t index : picks) sites.push_back(data[index]);
  return sites;
}

/// Counts distinct permutations for a prefix of the site list, reusing
/// one distance matrix: returns counts for k = ks[0], ks[1], ... where
/// each k uses the first k sites.  This matches the paper's protocol of
/// reporting several k values per database (Table 2 columns).
template <typename P>
std::vector<PermCountResult> CountForSitePrefixes(
    const std::vector<P>& data, const std::vector<P>& sites,
    const metric::Metric<P>& metric, const std::vector<size_t>& ks) {
  DP_CHECK(sites.size() <= kMaxRank64Sites);
  for (size_t k : ks) DP_CHECK(k <= sites.size());
  std::vector<std::unordered_set<uint64_t>> seen(ks.size());
  std::vector<double> distances(sites.size());
  uint64_t evaluations = 0;
  for (const P& point : data) {
    for (size_t i = 0; i < sites.size(); ++i) {
      distances[i] = metric(sites[i], point);
    }
    evaluations += sites.size();
    for (size_t t = 0; t < ks.size(); ++t) {
      std::vector<double> prefix(distances.begin(),
                                 distances.begin() + ks[t]);
      seen[t].insert(RankPermutation(PermutationFromDistances(prefix)));
    }
  }
  std::vector<PermCountResult> results(ks.size());
  for (size_t t = 0; t < ks.size(); ++t) {
    results[t].distinct_permutations = seen[t].size();
    results[t].points = data.size();
    results[t].metric_evaluations = evaluations;
  }
  return results;
}

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_PERM_COUNTER_H_
