#include "metric/cosine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace distperm {
namespace metric {
namespace {

constexpr double kPi = 3.14159265358979323846;

SparseVector Sparse(std::initializer_list<std::pair<uint32_t, double>> init) {
  return SparseVector(init.begin(), init.end());
}

TEST(SparseDot, DisjointSupportsGiveZero) {
  EXPECT_DOUBLE_EQ(SparseDot(Sparse({{0, 1.0}}), Sparse({{1, 1.0}})), 0.0);
}

TEST(SparseDot, OverlappingSupports) {
  auto a = Sparse({{0, 2.0}, {3, 1.0}, {7, 4.0}});
  auto b = Sparse({{3, 5.0}, {7, 0.5}, {9, 100.0}});
  EXPECT_DOUBLE_EQ(SparseDot(a, b), 5.0 + 2.0);
}

TEST(SparseNorm, KnownValue) {
  EXPECT_DOUBLE_EQ(SparseNorm(Sparse({{0, 3.0}, {5, 4.0}})), 5.0);
  EXPECT_DOUBLE_EQ(SparseNorm({}), 0.0);
}

TEST(AngleDistance, IdenticalDirectionIsZero) {
  auto a = Sparse({{1, 2.0}, {4, 1.0}});
  auto b = Sparse({{1, 4.0}, {4, 2.0}});  // same direction, scaled
  // acos near 1 amplifies rounding: acos(1 - 1e-16) ~ 1.5e-8.
  EXPECT_NEAR(AngleDistance(a, a), 0.0, 1e-6);
  EXPECT_NEAR(AngleDistance(a, b), 0.0, 1e-6);
}

TEST(AngleDistance, OrthogonalIsHalfPi) {
  auto a = Sparse({{0, 1.0}});
  auto b = Sparse({{1, 1.0}});
  EXPECT_NEAR(AngleDistance(a, b), kPi / 2.0, 1e-12);
}

TEST(AngleDistance, OppositeIsPi) {
  auto a = Sparse({{0, 1.0}});
  auto b = Sparse({{0, -1.0}});
  EXPECT_NEAR(AngleDistance(a, b), kPi, 1e-12);
}

TEST(AngleDistance, SymmetricAndTriangle) {
  util::Rng rng(5);
  std::vector<SparseVector> vectors;
  for (int i = 0; i < 10; ++i) {
    SparseVector v;
    for (uint32_t term = 0; term < 8; ++term) {
      if (rng.NextDouble() < 0.6) {
        v.emplace_back(term, rng.NextDouble() + 0.1);
      }
    }
    if (v.empty()) v.emplace_back(0, 1.0);
    vectors.push_back(v);
  }
  for (const auto& x : vectors) {
    for (const auto& y : vectors) {
      EXPECT_NEAR(AngleDistance(x, y), AngleDistance(y, x), 1e-12);
      for (const auto& z : vectors) {
        EXPECT_LE(AngleDistance(x, z),
                  AngleDistance(x, y) + AngleDistance(y, z) + 1e-9);
      }
    }
  }
}

TEST(AngleDistanceDense, MatchesSparse) {
  Vector a = {1.0, 0.0, 2.0};
  Vector b = {0.0, 3.0, 1.0};
  auto sa = Sparse({{0, 1.0}, {2, 2.0}});
  auto sb = Sparse({{1, 3.0}, {2, 1.0}});
  EXPECT_NEAR(AngleDistanceDense(a, b), AngleDistance(sa, sb), 1e-12);
}

TEST(AngleMetric, WrapperWorks) {
  AngleMetric metric;
  EXPECT_EQ(metric.name(), "angle");
  EXPECT_NEAR(metric(Sparse({{0, 1.0}}), Sparse({{1, 1.0}})), kPi / 2.0,
              1e-12);
}

}  // namespace
}  // namespace metric
}  // namespace distperm
