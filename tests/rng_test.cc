#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace distperm {
namespace util {
namespace {

TEST(SplitMix64, DeterministicAndMixing) {
  SplitMix64 a(42), b(42), c(43);
  uint64_t first_a = a.Next();
  EXPECT_EQ(first_a, b.Next());
  EXPECT_NE(first_a, c.Next());
  // Consecutive outputs differ.
  EXPECT_NE(a.Next(), a.Next());
}

TEST(Rng, DeterministicBySeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  bool any_diff = false;
  Rng a2(7);
  for (int i = 0; i < 100; ++i) any_diff |= a2.NextU64() != c.NextU64();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespected) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextDoubleMeanNearHalf) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBoundedStaysBelowBound) {
  Rng rng(4);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, NextBoundedCoversAllResidues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBoundedRoughlyUniform) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // within 10% of expectation
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, GaussianMoments) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(variance, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> values(50);
  for (int i = 0; i < 50; ++i) values[i] = i;
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SampleDistinctProducesDistinctInRange) {
  Rng rng(10);
  for (size_t n : {5u, 20u, 100u}) {
    for (size_t count : {0u, 1u, 3u, 5u}) {
      if (count > n) continue;
      auto sample = rng.SampleDistinct(n, count);
      EXPECT_EQ(sample.size(), count);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), count);
      for (size_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(Rng, SampleDistinctFullRange) {
  Rng rng(11);
  auto sample = rng.SampleDistinct(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleDistinctIsUnbiasedish) {
  // Each element of [0,6) should appear in a 3-subset about half the time.
  Rng rng(12);
  std::vector<int> hits(6, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t v : rng.SampleDistinct(6, 3)) ++hits[v];
  }
  for (int h : hits) EXPECT_NEAR(h, trials / 2, trials / 20);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.Split();
  bool differs = false;
  for (int i = 0; i < 16; ++i) differs |= parent.NextU64() != child.NextU64();
  EXPECT_TRUE(differs);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(14);
  // UniformRandomBitGenerator contract.
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  uint64_t v = rng();
  (void)v;
}

}  // namespace
}  // namespace util
}  // namespace distperm
