#include "dataset/string_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/status.h"

namespace distperm {
namespace dataset {
namespace {

// Deterministic 64-bit hash of a string (FNV-1a), used to seed language
// structure from the profile name.
uint64_t HashName(const std::string& name) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

MarkovWordGenerator::MarkovWordGenerator(const LanguageProfile& profile)
    : profile_(profile) {
  DP_CHECK(profile.alphabet >= 2 && profile.alphabet <= 26);
  const size_t a = profile.alphabet;
  util::Rng structure_rng(HashName(profile.name));
  // Zipf-skewed target letter frequencies, shuffled per language so that
  // different languages favour different letters.
  std::vector<double> frequency(a);
  for (size_t i = 0; i < a; ++i) frequency[i] = 1.0 / static_cast<double>(i + 1);
  structure_rng.Shuffle(&frequency);

  cumulative_.assign((a + 1) * a, 0.0);
  for (size_t row = 0; row <= a; ++row) {
    std::vector<double> weights(a);
    double total = 0.0;
    for (size_t col = 0; col < a; ++col) {
      // Base letter frequency modulated by a random per-bigram affinity;
      // squaring the uniform sharpens the structure (more forbidden-ish
      // bigrams, like real orthography).
      double affinity = structure_rng.NextDouble();
      weights[col] = frequency[col] * affinity * affinity + 1e-4;
      total += weights[col];
    }
    double acc = 0.0;
    for (size_t col = 0; col < a; ++col) {
      acc += weights[col] / total;
      cumulative_[row * a + col] = acc;
    }
    cumulative_[row * a + (a - 1)] = 1.0;  // guard against rounding
  }
}

std::string MarkovWordGenerator::NextWord(util::Rng* rng) const {
  const size_t a = profile_.alphabet;
  double raw_length =
      profile_.mean_length + profile_.sd_length * rng->NextGaussian();
  size_t length = static_cast<size_t>(
      std::clamp(std::lround(raw_length), 1L, 32L));
  std::string word;
  word.reserve(length);
  size_t state = a;  // start state
  for (size_t i = 0; i < length; ++i) {
    double u = rng->NextDouble();
    const double* row = &cumulative_[state * a];
    size_t letter =
        static_cast<size_t>(std::lower_bound(row, row + a, u) - row);
    if (letter >= a) letter = a - 1;
    word.push_back(static_cast<char>('a' + letter));
    state = letter;
  }
  return word;
}

std::vector<std::string> MarkovWordGenerator::Dictionary(
    size_t n, util::Rng* rng) const {
  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  size_t attempts = 0;
  const size_t max_attempts = n * 200 + 10000;
  while (seen.size() < n) {
    seen.insert(NextWord(rng));
    DP_CHECK_MSG(++attempts < max_attempts,
                 "language too small to yield " << n << " distinct words");
  }
  std::vector<std::string> words(seen.begin(), seen.end());
  std::sort(words.begin(), words.end());
  return words;
}

std::vector<std::string> DnaSequences(size_t n, size_t families,
                                      size_t min_length, size_t max_length,
                                      double mutation_rate, util::Rng* rng) {
  DP_CHECK(families >= 1);
  DP_CHECK(min_length >= 1 && min_length <= max_length);
  static constexpr char kBases[] = {'a', 'c', 'g', 't'};
  auto random_base = [&]() { return kBases[rng->NextBounded(4)]; };

  std::vector<std::string> ancestors(families);
  for (auto& ancestor : ancestors) {
    size_t length = min_length + static_cast<size_t>(rng->NextBounded(
                                     max_length - min_length + 1));
    ancestor.resize(length);
    for (auto& base : ancestor) base = random_base();
  }

  std::unordered_set<std::string> seen;
  seen.reserve(n * 2);
  size_t attempts = 0;
  const size_t max_attempts = n * 200 + 10000;
  while (seen.size() < n) {
    DP_CHECK_MSG(++attempts < max_attempts, "DNA generator stalled");
    std::string sequence =
        ancestors[static_cast<size_t>(rng->NextBounded(families))];
    // Point mutations.
    for (auto& base : sequence) {
      if (rng->NextDouble() < mutation_rate) base = random_base();
    }
    // Occasional single-base indel.
    if (rng->NextDouble() < 0.3 && sequence.size() > min_length) {
      sequence.erase(sequence.begin() +
                     static_cast<long>(rng->NextBounded(sequence.size())));
    }
    if (rng->NextDouble() < 0.3 && sequence.size() < max_length) {
      sequence.insert(sequence.begin() +
                          static_cast<long>(rng->NextBounded(
                              sequence.size() + 1)),
                      random_base());
    }
    seen.insert(std::move(sequence));
  }
  std::vector<std::string> sequences(seen.begin(), seen.end());
  std::sort(sequences.begin(), sequences.end());
  return sequences;
}

}  // namespace dataset
}  // namespace distperm
