// Reproduces the storage claims of Sections 1 and 4: index bits per
// point for LAESA's distances (O(k lg n)), a raw distance permutation
// (ceil lg k!), the table-compressed permutation (ceil lg N for the N
// permutations that actually occur), and the Euclidean-aware bound
// (ceil lg N_{d,2}(k), i.e. Theta(d lg k)).  Costs are evaluated both
// from the model and from a real bit-packed permutation index.
//
// Usage: storage_costs [--points=50000] [--seed=7]

#include <iostream>
#include <vector>

#include "core/euclidean_count.h"
#include "core/storage_model.h"
#include "dataset/vector_gen.h"
#include "index/distperm_index.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::core::CompareStorageCosts;
using distperm::core::StorageScenario;
using distperm::index::DistPermIndex;
using distperm::metric::LpMetric;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 50000));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 7));

  std::cout << "Storage comparison (Sections 1 and 4)\n";
  std::cout << "points=" << points << "\n\n";

  Metric<Vector> l2(LpMetric::L2());
  TablePrinter table;
  table.SetHeader({"d", "k", "distinct perms N", "laesa b/pt",
                   "raw perm b/pt", "table b/pt", "euclid-bound b/pt",
                   "packed index bits"});

  Rng rng(seed);
  for (int d : {2, 3, 4}) {
    for (size_t k : {8u, 12u, 16u}) {
      auto data =
          distperm::dataset::UniformCube(points, static_cast<size_t>(d),
                                         &rng);
      Rng site_rng = rng.Split();
      DistPermIndex<Vector> index(data, l2, k, &site_rng);
      size_t distinct = index.DistinctPermutationCount();

      StorageScenario scenario;
      scenario.points = points;
      scenario.sites = static_cast<int>(k);
      scenario.dimension = d;
      scenario.occurring_perms = distinct;
      auto costs = CompareStorageCosts(scenario);
      table.AddRow({std::to_string(d), std::to_string(k),
                    std::to_string(distinct),
                    std::to_string(costs[0].bits_per_point),
                    std::to_string(costs[1].bits_per_point),
                    std::to_string(costs[2].bits_per_point),
                    std::to_string(costs[3].bits_per_point),
                    std::to_string(index.IndexBits())});
      std::cerr << "d=" << d << " k=" << k << " done\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: raw permutations already beat LAESA "
               "(O(k lg k) vs O(k lg n) bits); the table/Euclidean-bound "
               "columns show the further reduction to O(d lg k) bits this "
               "paper proves.  'packed index bits' is the real size of the "
               "bit-packed index (= points * ceil lg k!).\n";
  return 0;
}
