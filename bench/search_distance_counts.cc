// Reproduces the search-efficiency context of Section 1: permutation
// indexes answer proximity queries with far fewer metric evaluations
// than a linear scan, comparable to (L)AESA, at a fraction of AESA's
// storage.  Reports metric evaluations per 10-NN query, index storage,
// and recall for the approximate permutation index.
//
// Every index is built from its registry spec string (--index=<spec>
// restricts the run to one entry), so adding a structure to the
// comparison is a string, not a compile-time change.
//
// Usage: search_distance_counts [--points=2000] [--queries=50]
//                               [--dim=8] [--seed=5] [--index=<spec>]

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "dataset/vector_gen.h"
#include "index/registry.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::index::SearchIndex;
using distperm::index::SearchResult;
using distperm::metric::LpMetric;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 2000));
  const int queries = static_cast<int>(flags.value().GetInt("queries", 50));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 8));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 5));
  const size_t knn = 10;

  Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  Metric<Vector> l2(LpMetric::L2());

  // The comparison set: one registry spec per row.  --index=<spec>
  // reduces the table to that single entry (plus the linear scan,
  // which always leads as the recall reference).
  std::vector<std::string> labels = {"linear-scan",
                                     "aesa",
                                     "iaesa:k=16",
                                     "laesa:k=16",
                                     "distperm:k=16,fraction=0.05",
                                     "distperm:k=16,fraction=0.2",
                                     "vp-tree",
                                     "gh-tree"};
  if (flags.value().Has("index")) {
    const std::string requested =
        flags.value().GetString("index", "linear-scan");
    labels = {"linear-scan"};
    if (requested != "linear-scan") labels.push_back(requested);
  }

  auto& registry = distperm::index::Registry<Vector>::Global();
  std::vector<std::unique_ptr<SearchIndex<Vector>>> indexes;
  for (const std::string& spec : labels) {
    Rng build_rng = rng.Split();
    auto built = registry.Create(spec, data, l2, &build_rng);
    if (!built.ok()) {
      std::cerr << "failed to build '" << spec << "': " << built.status()
                << "\n";
      return 1;
    }
    indexes.push_back(std::move(built).value());
  }

  // Ground truth for recall via the linear scan.
  auto& reference = *indexes[0];

  std::vector<uint64_t> cost(indexes.size(), 0);
  std::vector<double> recall(indexes.size(), 0.0);
  for (int q = 0; q < queries; ++q) {
    Vector query(dim);
    for (auto& coord : query) coord = rng.NextDouble();
    auto truth = reference.KnnQuery(query, knn);
    for (size_t i = 0; i < indexes.size(); ++i) {
      indexes[i]->ResetQueryCount();
      auto result = indexes[i]->KnnQuery(query, knn);
      cost[i] += indexes[i]->query_distance_computations();
      size_t hits = 0;
      for (const auto& t : truth) {
        for (const auto& r : result) {
          if (r.id == t.id) {
            ++hits;
            break;
          }
        }
      }
      recall[i] += static_cast<double>(hits) / static_cast<double>(knn);
    }
  }

  std::cout << "10-NN search cost (metric evaluations per query), n="
            << points << ", d=" << dim << ", " << queries << " queries\n\n";
  TablePrinter table;
  table.SetHeader({"index", "dist/query", "recall", "build dists",
                   "index bits/point"});
  for (size_t i = 0; i < indexes.size(); ++i) {
    char dist_s[32], recall_s[32];
    std::snprintf(dist_s, sizeof(dist_s), "%.1f",
                  static_cast<double>(cost[i]) / queries);
    std::snprintf(recall_s, sizeof(recall_s), "%.3f", recall[i] / queries);
    table.AddRow({labels[i], dist_s, recall_s,
                  std::to_string(indexes[i]->build_distance_computations()),
                  std::to_string(indexes[i]->IndexBits() / points)});
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: AESA/iAESA use the fewest distances but "
               "store O(n^2); LAESA trades distances for O(nk) storage; "
               "the permutation index stores only ceil(lg k!) bits per "
               "point (the paper's storage result) at the cost of "
               "approximate answers.\n";
  return 0;
}
