#include "util/table_printer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace distperm {
namespace util {
namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  size_t start = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  if (start == cell.size()) return false;
  for (size_t i = start; i < cell.size(); ++i) {
    char c = cell[i];
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != 'e' && c != 'E' && c != '-' && c != '+') {
      return false;
    }
  }
  return true;
}

}  // namespace

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Format(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < columns; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      if (i > 0) os << "  ";
      if (LooksNumeric(cell)) {
        os << std::string(widths[i] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[i] - cell.size(), ' ');
      }
    }
    os << "\n";
  };

  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < columns; ++i) total += widths[i] + (i > 0 ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace util
}  // namespace distperm
