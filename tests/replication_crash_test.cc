// Replication vs a real primary crash.
//
// Both tests fork primary processes (fsync=always) and SIGKILL them at
// a point that rotates across invocations, so CI's --gtest_repeat
// sweeps the kill through different phases:
//
//   - KillPrimaryMidWalStream: the replica is tailing live when the
//     primary dies mid-stream (sometimes mid-compaction).  A restarted
//     primary on the same port must be caught up from the replica's
//     own next_seq — no snapshot re-fetch — and the two stores must
//     converge bit-identically to the restarted primary's recovered
//     state.
//
//   - KillPrimaryMidSnapshotTransfer: the primary dies partway through
//     serving a chunked snapshot.  The restarted primary serves the
//     same generation-1 snapshot bytes, and the transfer must resume
//     from the partial file's byte offset instead of starting over.
//
// Fork discipline: both children are forked BEFORE any replica thread
// exists (the standby child blocks on a go-pipe), so fork never
// duplicates a multi-threaded parent.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/generation_store.h"
#include "engine/live_database.h"
#include "metric/lp.h"
#include "obs/metrics.h"
#include "server/replica_server.h"
#include "server/replication_client.h"
#include "server/search_server.h"
#include "storage/env.h"
#include "util/rng.h"

namespace distperm {
namespace server {
namespace {

using engine::LiveDatabase;
using metric::Vector;

#if defined(__SANITIZE_THREAD__)
constexpr bool kForkUnsafe = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kForkUnsafe = true;
#else
constexpr bool kForkUnsafe = false;
#endif
#else
constexpr bool kForkUnsafe = false;
#endif

constexpr uint64_t kSeed = 311;
constexpr size_t kShards = 2;
constexpr size_t kDim = 4;
const char kSpec[] = "vp-tree";

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

std::string DurableSpec(const std::string& dir) {
  return std::string(kSpec) + ":fsync=always,wal_dir=" + dir;
}

std::string FreshDir(const std::string& name) {
  storage::Env* env = storage::Env::Default();
  const std::string dir = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(env->CreateDir(dir).ok());
  if (auto listing = env->ListDir(dir); listing.ok()) {
    for (const std::string& file : listing.value()) {
      env->DeleteFile(dir + "/" + file);
    }
  }
  return dir;
}

bool WaitFor(const std::function<bool()>& done, int timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

bool ReadExact(int fd, void* out, size_t size) {
  size_t got = 0;
  while (got < size) {
    const ssize_t n =
        ::read(fd, static_cast<char*>(out) + got, size - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

void WriteExact(int fd, const void* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::write(fd, static_cast<const char*>(data) + sent, size - sent);
    if (n <= 0) _exit(90);
    sent += static_cast<size_t>(n);
  }
}

/// The primary child's whole life: open (seed or recover), serve, run
/// the insert script, report progress, then idle until SIGKILL.
///
/// Pipe protocol (child -> parent):
///   2 bytes   the bound port (little endian)
///   16 bytes  opened position: generation (8B) + delta_entries (8B)
///   'p' / 'c' one insert slice done / about to compact
///   'd' + 16B done: generation (8B) + delta_entries (8B)
///
/// No gtest in here; failures are exit codes the parent reports.
[[noreturn]] void PrimaryChild(const std::string& dir, uint16_t port,
                               const std::vector<Vector>& seed_data,
                               const std::vector<Vector>& stream,
                               size_t inserts_per_signal,
                               size_t compact_every, size_t chunk_bytes,
                               int signal_fd) {
  auto opened = LiveDatabase<Vector>::Open(seed_data, L2(), kShards,
                                           DurableSpec(dir), kSeed);
  if (!opened.ok()) _exit(81);
  obs::MetricsRegistry metrics("primary_child");
  SearchServer<Vector>::Options options;
  options.metrics = &metrics;
  if (chunk_bytes != 0) options.replication_chunk_bytes = chunk_bytes;
  SearchServer<Vector> server(opened.value().get(), options);
  if (!server.Start(port).ok()) _exit(82);
  std::thread serving([&server]() { server.Run(); });
  const uint16_t bound = server.port();
  WriteExact(signal_fd, &bound, sizeof(bound));
  const uint64_t opened_generation = opened.value()->generation_number();
  const uint64_t opened_delta = opened.value()->delta_entries();
  WriteExact(signal_fd, &opened_generation, sizeof(opened_generation));
  WriteExact(signal_fd, &opened_delta, sizeof(opened_delta));

  for (size_t i = 0; i < stream.size(); ++i) {
    if (!opened.value()->Insert(stream[i]).ok()) _exit(83);
    if ((i + 1) % inserts_per_signal == 0) {
      WriteExact(signal_fd, "p", 1);
    }
    if (compact_every != 0 && (i + 1) % compact_every == 0) {
      WriteExact(signal_fd, "c", 1);
      if (!opened.value()->Compact().ok()) _exit(84);
    }
  }
  WriteExact(signal_fd, "d", 1);
  const uint64_t generation = opened.value()->generation_number();
  const uint64_t delta = opened.value()->delta_entries();
  WriteExact(signal_fd, &generation, sizeof(generation));
  WriteExact(signal_fd, &delta, sizeof(delta));
  for (;;) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

struct ChildProc {
  pid_t pid = -1;
  int read_fd = -1;   // child -> parent progress
  int go_fd = -1;     // parent -> child release (standby children)

  void ExpectKilled() {
    ASSERT_GE(pid, 0);
    ::kill(pid, SIGKILL);
    int wait_status = 0;
    ASSERT_EQ(::waitpid(pid, &wait_status, 0), pid);
    if (WIFEXITED(wait_status)) {
      ASSERT_EQ(WEXITSTATUS(wait_status), 0)
          << "primary child failed before the kill";
    } else {
      ASSERT_TRUE(WIFSIGNALED(wait_status));
    }
    pid = -1;
  }

  ~ChildProc() {
    if (pid >= 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
    if (read_fd >= 0) ::close(read_fd);
    if (go_fd >= 0) ::close(go_fd);
  }
};

/// Forks a primary child.  With `standby`, the child blocks until the
/// parent writes 'g' + the port to bind — so it can be forked while
/// the parent is still single-threaded and released much later.
std::unique_ptr<ChildProc> ForkPrimary(const std::string& dir, bool standby,
                                       const std::vector<Vector>& seed_data,
                                       const std::vector<Vector>& stream,
                                       size_t inserts_per_signal,
                                       size_t compact_every,
                                       size_t chunk_bytes) {
  int progress[2];
  int go[2] = {-1, -1};
  EXPECT_EQ(::pipe(progress), 0);
  if (standby) {
    EXPECT_EQ(::pipe(go), 0);
  }
  auto child = std::make_unique<ChildProc>();
  child->pid = ::fork();
  EXPECT_GE(child->pid, 0);
  if (child->pid == 0) {
    ::close(progress[0]);
    uint16_t port = 0;
    if (standby) {
      ::close(go[1]);
      char byte = 0;
      if (!ReadExact(go[0], &byte, 1) || byte != 'g') _exit(85);
      if (!ReadExact(go[0], &port, sizeof(port))) _exit(86);
      ::close(go[0]);
    }
    PrimaryChild(dir, port, seed_data, stream, inserts_per_signal,
                 compact_every, chunk_bytes, progress[1]);
  }
  ::close(progress[1]);
  if (standby) ::close(go[0]);
  child->read_fd = progress[0];
  child->go_fd = go[1];
  return child;
}

ReplicaServer<Vector>::Options ReplicaOptions(
    const std::string& dir, uint16_t primary_port,
    obs::MetricsRegistry* metrics) {
  ReplicaServer<Vector>::Options options;
  options.dir = dir;
  options.index_spec = kSpec;
  options.seed = kSeed;
  options.shard_count = kShards;
  options.metrics = metrics;
  options.replication.primary_port = primary_port;
  options.replication.idle_timeout_ms = 250;
  options.replication.backoff_initial_ms = 20;
  options.replication.backoff_max_ms = 200;
  return options;
}

TEST(ReplicationCrash, KillPrimaryMidWalStreamResumesAndConverges) {
  if (kForkUnsafe) {
    GTEST_SKIP() << "fork-based crash test is not run under TSan";
  }
  const std::string primary_dir = FreshDir("repl_crash_stream_primary");
  const std::string replica_dir = FreshDir("repl_crash_stream_replica");

  // Rotate the kill point across invocations; 'c' signals land right
  // before a compaction, so some invocations kill inside the rotation
  // window.
  static int invocation = 0;
  const int kill_on_signal = invocation++ % 6 + 1;

  util::Rng base_rng(401);
  const std::vector<Vector> base = dataset::UniformCube(200, kDim, &base_rng);
  util::Rng stream_rng(402);
  const std::vector<Vector> stream =
      dataset::UniformCube(120, kDim, &stream_rng);
  util::Rng resume_rng(403);
  const std::vector<Vector> resume_stream =
      dataset::UniformCube(30, kDim, &resume_rng);

  // Fork both primaries before any replica thread exists.  The first
  // starts serving immediately; the restart child waits on its go-pipe
  // until the first has been killed.
  auto first = ForkPrimary(primary_dir, /*standby=*/false, base, stream,
                           /*inserts_per_signal=*/8,
                           /*compact_every=*/40, /*chunk_bytes=*/0);
  auto restart =
      ForkPrimary(primary_dir, /*standby=*/true, {}, resume_stream,
                  /*inserts_per_signal=*/8, /*compact_every=*/0,
                  /*chunk_bytes=*/0);

  uint16_t port = 0;
  ASSERT_TRUE(ReadExact(first->read_fd, &port, sizeof(port)));
  ASSERT_NE(port, 0);
  uint64_t opened_generation = 0;
  uint64_t opened_delta = 0;
  ASSERT_TRUE(ReadExact(first->read_fd, &opened_generation,
                        sizeof(opened_generation)));
  ASSERT_TRUE(
      ReadExact(first->read_fd, &opened_delta, sizeof(opened_delta)));

  obs::MetricsRegistry replica_metrics("replica");
  auto opened = ReplicaServer<Vector>::Open(
      L2(), ReplicaOptions(replica_dir, port, &replica_metrics));
  ASSERT_TRUE(opened.ok()) << opened.status();
  ReplicaServer<Vector>& replica = *opened.value();
  ASSERT_TRUE(replica.Start(0).ok());
  std::thread serving([&replica]() { replica.Run(); });

  // Let the stream flow, then kill the primary mid-stream.
  int signals_seen = 0;
  char byte = 0;
  while (signals_seen < kill_on_signal &&
         ReadExact(first->read_fd, &byte, 1) &&
         (byte == 'p' || byte == 'c')) {
    ++signals_seen;
  }
  first->ExpectKilled();

  // The replica is now on its own: it must still be serving whatever
  // it applied, and its tail thread is in the backoff loop.
  ASSERT_TRUE(WaitFor(
      [&]() { return replica.replication().lag_seconds() > 0.3; }));
  const uint64_t chunks_after_bootstrap =
      replica_metrics.GetCounter("replica_snapshot_chunks_total")->Value();
  const uint64_t reconnects_before = replica.replication().reconnects();
  const uint64_t replica_generation_at_loss =
      replica.db().generation_number();

  // Restart the primary on the same port and directory: it recovers
  // its durable prefix and appends a fresh tail.
  WriteExact(restart->go_fd, "g", 1);
  WriteExact(restart->go_fd, &port, sizeof(port));
  uint16_t restart_port = 0;
  ASSERT_TRUE(ReadExact(restart->read_fd, &restart_port,
                        sizeof(restart_port)));
  ASSERT_EQ(restart_port, port);
  uint64_t recovered_generation = 0;
  uint64_t recovered_delta = 0;
  ASSERT_TRUE(ReadExact(restart->read_fd, &recovered_generation,
                        sizeof(recovered_generation)));
  ASSERT_TRUE(ReadExact(restart->read_fd, &recovered_delta,
                        sizeof(recovered_delta)));
  while (ReadExact(restart->read_fd, &byte, 1) && byte != 'd') {
  }
  ASSERT_EQ(byte, 'd');
  uint64_t final_generation = 0;
  uint64_t final_delta = 0;
  ASSERT_TRUE(ReadExact(restart->read_fd, &final_generation,
                        sizeof(final_generation)));
  ASSERT_TRUE(
      ReadExact(restart->read_fd, &final_delta, sizeof(final_delta)));

  // Converge to the restarted primary's reported position.
  ASSERT_TRUE(WaitFor([&]() {
    return replica.db().generation_number() == final_generation &&
           replica.db().delta_entries() == final_delta;
  })) << "replica never converged to generation " << final_generation
      << " delta " << final_delta
      << "; last error: " << replica.replication().last_error();
  EXPECT_GT(replica.replication().reconnects(), reconnects_before);
  if (replica_generation_at_loss == recovered_generation) {
    // The common case: same generation on both sides, so the resume
    // must ride the WAL stream from the replica's own next_seq.
    EXPECT_EQ(
        replica_metrics.GetCounter("replica_snapshot_chunks_total")->Value(),
        chunks_after_bootstrap)
        << "generation matched at reconnect; a snapshot re-fetch here "
           "means resume-by-seq is broken";
  }
  // (When the kill landed between the primary's durable rotation and
  // the rotate frame reaching the replica, the generations diverge and
  // a snapshot re-fetch IS the designed recovery — convergence above
  // is the invariant that always holds.)

  // Fingerprint check against the primary's durable store itself
  // (fsync=always: the reported position IS the durable state).
  restart->ExpectKilled();
  auto recovered = LiveDatabase<Vector>::Open({}, L2(), kShards,
                                              DurableSpec(primary_dir),
                                              kSeed);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered.value()->generation_number(), final_generation);
  EXPECT_EQ(recovered.value()->delta_entries(), final_delta);
  const std::vector<Vector> want = recovered.value()->Pin().Materialize();
  const std::vector<Vector> got = replica.db().Pin().Materialize();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "point " << i;
  }

  replica.Shutdown();
  serving.join();
}

TEST(ReplicationCrash, KillPrimaryMidSnapshotTransferResumesFromPartial) {
  if (kForkUnsafe) {
    GTEST_SKIP() << "fork-based crash test is not run under TSan";
  }
  const std::string primary_dir = FreshDir("repl_crash_snap_primary");
  const std::string replica_dir = FreshDir("repl_crash_snap_replica");

  static int invocation = 0;
  const uint64_t kill_after_chunks = invocation++ % 4 + 1;

  // A store big enough that its snapshot spans thousands of 1 KiB
  // chunks: the transfer takes long enough that the parent reliably
  // lands its SIGKILL mid-stream.
  util::Rng rng(405);
  const std::vector<Vector> big = dataset::UniformCube(20000, 8, &rng);

  auto first = ForkPrimary(primary_dir, /*standby=*/false, big, {},
                           /*inserts_per_signal=*/1, /*compact_every=*/0,
                           /*chunk_bytes=*/1024);
  auto restart = ForkPrimary(primary_dir, /*standby=*/true, {}, {},
                             /*inserts_per_signal=*/1, /*compact_every=*/0,
                             /*chunk_bytes=*/1024);

  uint16_t port = 0;
  ASSERT_TRUE(ReadExact(first->read_fd, &port, sizeof(port)));

  obs::MetricsRegistry metrics("bootstrap");
  ReplicationClient<Vector>::Options options;
  options.primary_port = port;
  options.idle_timeout_ms = 1000;
  options.metrics = &metrics;
  storage::Env* env = storage::Env::Default();
  obs::Counter* chunk_counter =
      metrics.GetCounter("replica_snapshot_chunks_total");

  // Pull the snapshot on a side thread; kill the primary as soon as a
  // few chunks have landed.
  std::atomic<bool> transfer_done{false};
  util::Status first_attempt = util::Status::OK();
  std::thread puller([&]() {
    first_attempt = ReplicationClient<Vector>::BootstrapSnapshot(
        env, replica_dir, kSpec, kSeed, kShards, options);
    transfer_done.store(true);
  });
  while (!transfer_done.load() && chunk_counter->Value() < kill_after_chunks) {
  }
  first->ExpectKilled();
  puller.join();
  ASSERT_FALSE(first_attempt.ok())
      << "the transfer outran the kill; the snapshot must span enough "
         "chunks that this cannot happen";

  const std::string partial_path =
      replica_dir + "/" + engine::SnapshotFileName(1) + ".partial";
  auto partial = env->MapFile(partial_path);
  ASSERT_TRUE(partial.ok()) << "a torn transfer must leave its partial";
  const uint64_t partial_bytes = partial.value()->size();
  EXPECT_GE(partial_bytes, kill_after_chunks > 1 ? 1024u : 0u);

  // Restart the primary (it recovers the same generation-1 snapshot)
  // and finish the pull: it must resume at the partial's offset.
  WriteExact(restart->go_fd, "g", 1);
  WriteExact(restart->go_fd, &port, sizeof(port));
  uint16_t restart_port = 0;
  ASSERT_TRUE(ReadExact(restart->read_fd, &restart_port,
                        sizeof(restart_port)));
  util::Status second_attempt = ReplicationClient<Vector>::BootstrapSnapshot(
      env, replica_dir, kSpec, kSeed, kShards, options);
  ASSERT_TRUE(second_attempt.ok()) << second_attempt;
  EXPECT_EQ(metrics.GetCounter("replica_snapshot_resumes_total")->Value(),
            1u);

  const std::string final_path =
      replica_dir + "/" + engine::SnapshotFileName(1);
  auto final_file = env->MapFile(final_path);
  ASSERT_TRUE(final_file.ok());
  EXPECT_EQ(metrics.GetCounter("replica_snapshot_bytes_total")->Value(),
            final_file.value()->size())
      << "both attempts together must cover the file exactly once";
  auto loaded = engine::ReadGenerationSnapshot<Vector>(
      env, final_path, L2(), kShards, kSpec, kSeed, /*build_threads=*/1);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded.value()->size(), 20000u);
  restart->ExpectKilled();
}

}  // namespace
}  // namespace server
}  // namespace distperm
