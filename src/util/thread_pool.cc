#include "util/thread_pool.h"

#include <chrono>
#include <utility>

namespace distperm {
namespace util {

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) thread_count = 1;
  workers_.reserve(thread_count);
  for (size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (instruments_.tasks_submitted != nullptr) {
    instruments_.tasks_submitted->Increment();
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this]() { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(
          lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with no work left
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (instruments_.task_seconds != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      task();
      instruments_.task_seconds->Record(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count());
    } else {
      task();
    }
    executed_.fetch_add(1, std::memory_order_relaxed);
    if (instruments_.tasks_executed != nullptr) {
      instruments_.tasks_executed->Increment();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace util
}  // namespace distperm
