// Network fault injection: a TCP relay that severs, truncates, or
// delays traffic at an exact byte offset.
//
// The socket-side twin of storage's FaultInjectionEnv.  Tests point a
// client at the proxy's port instead of the real server; the proxy
// relays bytes both ways until an armed byte budget runs out, then
// shuts both sides down mid-stream — exactly the torn-transfer shape a
// crashed peer or dropped route produces.  Because the cut lands at a
// deterministic byte offset, a test can truncate a snapshot transfer
// in the middle of a chunk, or a WAL stream in the middle of a frame,
// and assert the resume path byte-for-byte.
//
// One connection at a time (the replica protocol is one connection),
// sequential reconnects supported: after a cut the proxy goes back to
// accepting, so backoff/retry loops exercise end to end.  A fired cut
// disarms itself; re-arm with SetClientCut/SetUpstreamCut to hit a
// later connection too.

#ifndef DISTPERM_NET_FAULT_PROXY_H_
#define DISTPERM_NET_FAULT_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "net/listener.h"
#include "util/status.h"

namespace distperm {
namespace net {

class FaultProxy {
 public:
  /// "Never cut" budget sentinel.
  static constexpr uint64_t kNoCut = UINT64_MAX;

  struct Options {
    std::string upstream_host = "127.0.0.1";
    uint16_t upstream_port = 0;
    /// 0 picks an ephemeral port; read it back with port().
    uint16_t listen_port = 0;
    /// Sever the connection after relaying this many bytes toward the
    /// client (upstream -> client direction).
    uint64_t cut_to_client_after_bytes = kNoCut;
    /// Sever after this many bytes toward the upstream.
    uint64_t cut_to_upstream_after_bytes = kNoCut;
    /// Sleep this long before forwarding each relayed chunk —
    /// latency injection for timeout tests.
    int delay_ms_per_chunk = 0;
  };

  static util::Result<std::unique_ptr<FaultProxy>> Start(
      const Options& options);

  ~FaultProxy();
  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  uint16_t port() const { return listener_->port(); }

  /// Stops relaying and joins the thread.  Idempotent.
  void Stop();

  /// Re-arms the upstream->client cut: the NEXT `bytes` relayed toward
  /// the client (counted from now) flow, then the connection dies.
  void SetClientCut(uint64_t bytes) { to_client_budget_.store(bytes); }
  /// Same for the client->upstream direction.
  void SetUpstreamCut(uint64_t bytes) { to_upstream_budget_.store(bytes); }

  uint64_t bytes_to_client() const { return bytes_to_client_.load(); }
  uint64_t bytes_to_upstream() const { return bytes_to_upstream_.load(); }
  uint64_t connections_accepted() const {
    return connections_accepted_.load();
  }
  uint64_t cuts_total() const { return cuts_total_.load(); }

 private:
  FaultProxy(const Options& options, std::unique_ptr<Listener> listener)
      : options_(options),
        listener_(std::move(listener)),
        to_client_budget_(options.cut_to_client_after_bytes),
        to_upstream_budget_(options.cut_to_upstream_after_bytes) {}

  void Run();
  /// Relays one readable chunk from `from` to `to`, honoring `budget`.
  /// Returns false when the connection must be severed (cut fired,
  /// peer hung up, or I/O error).
  bool RelayChunk(int from, int to, std::atomic<uint64_t>* budget,
                  std::atomic<uint64_t>* relayed);

  Options options_;
  std::unique_ptr<Listener> listener_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> to_client_budget_;
  std::atomic<uint64_t> to_upstream_budget_;
  std::atomic<uint64_t> bytes_to_client_{0};
  std::atomic<uint64_t> bytes_to_upstream_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> cuts_total_{0};
};

}  // namespace net
}  // namespace distperm

#endif  // DISTPERM_NET_FAULT_PROXY_H_
