// Per-thread reusable query scratch buffers.
//
// The engine layer answers batches by fanning (query, shard) tasks onto
// a fixed worker pool (util::ThreadPool), so the same few threads run
// millions of queries.  Each index query needs transient buffers — a
// block of kernel scores, an array of (footrule, id) candidates, an
// array of (lower bound, id) pairs — that used to be heap-allocated per
// call.  QueryScratch keeps one instance of each per thread: buffers
// grow to the high-water mark of the queries that thread serves and are
// then reused allocation-free.
//
// Contract: a query implementation may use the scratch only within one
// Impl call (no state may live across calls — queries stay reentrant
// per thread), and must size the buffer itself before use.

#ifndef DISTPERM_INDEX_QUERY_SCRATCH_H_
#define DISTPERM_INDEX_QUERY_SCRATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "index/search.h"

namespace distperm {
namespace index {

struct QueryScratch {
  /// Kernel scores for one block of rows (linear scan).
  std::vector<double> distance_block;
  /// (footrule, id) candidate ranking (distperm index).
  std::vector<std::pair<uint32_t, uint32_t>> scored;
  /// (lower bound, id) verification order (LAESA).
  std::vector<std::pair<double, size_t>> bounds;
  /// Pooled kNN collector: SearchIndex::Search re-arms it per call via
  /// Reset/Reserve, so the kNN hot path performs no per-query heap
  /// allocation after a thread's first few queries.
  KnnCollector collector{0};

  /// The calling thread's scratch instance.
  static QueryScratch& ForThread() {
    static thread_local QueryScratch scratch;
    return scratch;
  }
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_QUERY_SCRATCH_H_
