// Batch-level statistics reported by the query engine.
//
// The engine keeps the paper's cost model intact under concurrency:
// every worker accumulates metric evaluations in per-call QueryStats and
// the engine folds them into atomic aggregates, so the reported counts
// are exactly what a single-threaded execution of the same queries would
// have measured.  Latency and recall are the serving-side metrics the
// cost model does not cover.

#ifndef DISTPERM_ENGINE_BATCH_STATS_H_
#define DISTPERM_ENGINE_BATCH_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "index/index.h"

namespace distperm {
namespace engine {

/// Five-number-ish summary of per-query completion latencies.
/// Percentiles interpolate linearly between order statistics (rank
/// q * (n - 1), the common "linear" quantile definition): a single
/// sample reports itself, two samples of {a, b} report a + q * (b - a),
/// and the readout is continuous in the inputs — unlike the previous
/// nearest-rank rule, which for small n snapped p99 to the max.
struct LatencySummary {
  size_t count = 0;
  double min_seconds = 0.0;
  double mean_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Summarizes a vector of latencies (empty input yields all zeros).
LatencySummary SummarizeLatencies(std::vector<double> seconds);

/// What one RunBatch call did, in aggregate.
struct BatchStats {
  size_t query_count = 0;
  size_t shard_count = 0;
  size_t thread_count = 0;
  /// Total metric evaluations across all shards and queries — matches
  /// the single-threaded cost model exactly.
  uint64_t distance_computations = 0;
  /// Candidates the indexes discarded without a metric evaluation
  /// (block-min score filtering, lower-bound elimination), summed over
  /// all shards and queries.  See index::QueryStats.
  uint64_t pruning_eliminated = 0;
  /// Candidates verified by a true distance in an approximate index's
  /// verification stage (distperm), summed over all shards and queries.
  uint64_t candidates_verified = 0;
  /// Wall-clock time of the whole batch, submit to last merge.
  double wall_seconds = 0.0;
  /// Per-query completion latencies, measured from batch start.
  LatencySummary latency;
};

/// Mean fraction of each truth result set recovered by the corresponding
/// actual result set (matching by id).  Queries with empty truth count
/// as fully recalled.  Requires equal outer sizes.
double AverageRecall(
    const std::vector<std::vector<index::SearchResult>>& actual,
    const std::vector<std::vector<index::SearchResult>>& truth);

}  // namespace engine
}  // namespace distperm

#endif  // DISTPERM_ENGINE_BATCH_STATS_H_
