// Reusable fixed-size worker thread pool.
//
// The batch query engine submits one task per (query, shard) pair; the
// pool runs them on a fixed set of workers so thread creation cost is
// paid once per engine, not once per batch.  Wait() gives batch-barrier
// semantics: it blocks until every task submitted so far has finished,
// after which the pool is immediately reusable for the next batch.

#ifndef DISTPERM_UTIL_THREAD_POOL_H_
#define DISTPERM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace distperm {
namespace util {

/// Fixed-size FIFO thread pool.  Wait() may be called only from the
/// owning thread.  Submit() is thread-safe: it may be called from the
/// owning thread, from any other thread (live-ingest writers schedule
/// background compactions from arbitrary threads), or from within a
/// running task (the engine's two-phase scheduling submits a query's
/// fan-out from its seed task).  A task's submissions happen before the
/// task is counted finished, so Wait() cannot wake until the chained
/// work has drained too.  Tasks must not call Wait().
///
/// Shutdown interacts safely with Submit-from-task: the destructor's
/// shutdown flag lets idle workers exit once the queue is empty, but a
/// task that submits during shutdown always has its own (still-live)
/// worker pick the chained work up after it finishes — submissions from
/// inside tasks are therefore never dropped, and the destructor joins
/// only after every chain has drained (regression-tested in
/// tests/engine_test.cc, ThreadPool.DestructorDrainsChainsStillSubmitting).
class ThreadPool {
 public:
  /// Spawns `thread_count` workers (at least 1).
  explicit ThreadPool(size_t thread_count);

  /// Drains outstanding tasks (including tasks submitted by tasks
  /// during shutdown), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Number of worker threads.
  size_t thread_count() const { return workers_.size(); }

  /// Tasks enqueued but not yet picked up by a worker — the pool's
  /// backlog at this instant.  Takes the pool mutex; meant for gauge
  /// callbacks and tests, not for hot-path polling.
  size_t queue_depth() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return queue_.size();
  }

  /// Tasks accepted by Submit() so far.
  uint64_t submitted_count() const {
    return submitted_.load(std::memory_order_relaxed);
  }

  /// Tasks that have finished running.  submitted_count() -
  /// executed_count() is the work still queued or in flight.
  uint64_t executed_count() const {
    return executed_.load(std::memory_order_relaxed);
  }

  /// Wires optional obs instruments (null members are skipped): task
  /// submit/execute counters and a per-task run-time histogram.  Call
  /// at setup time, before tasks are submitted concurrently; the
  /// pointees must outlive the pool.
  void set_instruments(obs::ThreadPoolInstruments instruments) {
    instruments_ = instruments;
  }

 private:
  void WorkerLoop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;   // signalled on Submit / shutdown
  std::condition_variable all_idle_;     // signalled when work drains
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // dequeued but not yet finished
  bool shutdown_ = false;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  obs::ThreadPoolInstruments instruments_;
  std::vector<std::thread> workers_;
};

}  // namespace util
}  // namespace distperm

#endif  // DISTPERM_UTIL_THREAD_POOL_H_
