#include "dataset/io.h"

#include <unistd.h>

#include <fstream>
#include <sstream>

namespace distperm {
namespace dataset {

using util::Result;
using util::Status;

namespace {

/// Open failure split into the two cases callers branch on: a path
/// that names nothing (NotFound — try the next candidate, or tell the
/// user their flag is wrong) vs. a path that exists but cannot be read
/// (IoError — permissions, a directory, a dying disk).
Status OpenError(const std::string& path) {
  if (::access(path.c_str(), F_OK) != 0) {
    return Status::NotFound("no such file: " + path);
  }
  return Status::IoError("cannot open " + path);
}

}  // namespace

Status WriteVectors(const std::string& path,
                    const std::vector<metric::Vector>& points) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  size_t d = points.empty() ? 0 : points[0].size();
  out << points.size() << " " << d << "\n";
  out.precision(17);
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& point = points[i];
    if (point.size() != d) {
      return Status::InvalidArgument(
          "point " + std::to_string(i) + " has dimension " +
          std::to_string(point.size()) + " but point 0 has " +
          std::to_string(d));
    }
    for (size_t j = 0; j < point.size(); ++j) {
      if (j > 0) out << " ";
      out << point[j];
    }
    out << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<metric::Vector>> ReadVectors(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenError(path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError(path + ": empty file (expected an 'n d' header)");
  }
  size_t n = 0, d = 0;
  {
    std::istringstream header(line);
    std::string trailing;
    if (!(header >> n >> d) || (header >> trailing)) {
      return Status::IoError(path + ": malformed header '" + line +
                             "' (expected 'n d')");
    }
  }
  std::vector<metric::Vector> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!std::getline(in, line)) {
      return Status::IoError(
          path + ": truncated payload — header promises " +
          std::to_string(n) + " points but the file ends after " +
          std::to_string(i));
    }
    std::istringstream row(line);
    metric::Vector point;
    point.reserve(d);
    double value = 0.0;
    while (row >> value) point.push_back(value);
    if (!row.eof()) {
      return Status::IoError(path + ": point " + std::to_string(i) +
                             " holds a non-numeric token in '" + line + "'");
    }
    if (point.size() != d) {
      return Status::InvalidArgument(
          path + ": point " + std::to_string(i) + " has dimension " +
          std::to_string(point.size()) + " but the header promises " +
          std::to_string(d));
    }
    points.push_back(std::move(point));
  }
  return points;
}

Status WriteStrings(const std::string& path,
                    const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const auto& line : lines) {
    if (line.find('\n') != std::string::npos) {
      return Status::InvalidArgument("string contains a newline");
    }
    out << line << "\n";
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Result<std::vector<std::string>> ReadStrings(const std::string& path) {
  std::ifstream in(path);
  if (!in) return OpenError(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  if (in.bad()) {
    return Status::IoError(path + ": read failed after " +
                           std::to_string(lines.size()) + " lines");
  }
  return lines;
}

}  // namespace dataset
}  // namespace distperm
