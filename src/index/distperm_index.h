// The permutation index of Chavez, Figueroa & Navarro (2005) — the
// "distperm" index the paper instruments for its Section 5 experiments.
//
// Per database point the index stores only the point's distance
// permutation with respect to k sites (bit-packed: ceil(lg k!) bits), or
// optionally just the prefix naming its `prefix_length` closest sites —
// the truncated variant used in practice when k is large.  At query time
// the query's own permutation is computed (k metric evaluations) and
// candidates are verified in increasing Spearman-footrule order;
// reviewing only a fraction f of the database gives the probabilistic
// search of the original paper.  The index also reports the number of
// distinct permutations it stores — the quantity this paper counts — and
// its exact packed storage size.

#ifndef DISTPERM_INDEX_DISTPERM_INDEX_H_
#define DISTPERM_INDEX_DISTPERM_INDEX_H_

#include <algorithm>
#include <atomic>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/distance_permutation.h"
#include "core/perm_codec.h"
#include "core/perm_metrics.h"
#include "index/index.h"
#include "index/pivot_select.h"
#include "util/bitpack.h"
#include "util/rng.h"

namespace distperm {
namespace index {

/// Permutation (distperm) index.  Range and kNN queries are approximate:
/// they verify the `fraction` of the database whose stored permutations
/// are footrule-closest to the query's permutation.  fraction = 1.0
/// degenerates to an ordered linear scan (exact).
template <typename P>
class DistPermIndex : public SearchIndex<P> {
 public:
  using SearchIndex<P>::data_;

  /// Builds with `site_count` random sites (the paper's protocol) and
  /// the given default verification fraction.  `prefix_length` = 0 (the
  /// default) stores full permutations; a value m in [1, site_count)
  /// stores only each point's m closest sites.
  DistPermIndex(std::vector<P> data, metric::Metric<P> metric,
                size_t site_count, util::Rng* rng, double fraction = 0.1,
                size_t prefix_length = 0)
      : SearchIndex<P>(std::move(data), std::move(metric)),
        fraction_(fraction) {
    DP_CHECK(site_count >= 1 && site_count <= core::kMaxRank64Sites);
    DP_CHECK(fraction > 0.0 && fraction <= 1.0);
    prefix_ = prefix_length == 0 ? site_count
                                 : std::min(prefix_length, site_count);
    std::vector<size_t> site_ids = RandomPivots(data_, site_count, rng);
    sites_.reserve(site_count);
    for (size_t id : site_ids) sites_.push_back(data_[id]);

    permutations_.reserve(data_.size());
    std::vector<double> distances(site_count);
    util::BitWriter writer;
    for (const P& point : data_) {
      for (size_t j = 0; j < site_count; ++j) {
        distances[j] = this->BuildDist(sites_[j], point);
      }
      core::Permutation perm =
          prefix_ == site_count
              ? core::PermutationFromDistances(distances)
              : core::PermutationPrefixFromDistances(distances, prefix_);
      PackPermutation(perm, &writer);
      permutations_.push_back(std::move(perm));
    }
    packed_bits_ = writer.bit_count();
    packed_ = writer.Finish();
  }

  std::string name() const override {
    return prefix_ == sites_.size() ? "distperm" : "distperm-prefix";
  }

  /// Exact packed size of the stored permutations in bits.
  uint64_t IndexBits() const override { return packed_bits_; }

  /// Number of distinct (possibly truncated) permutations stored — the
  /// paper's counted quantity.
  size_t DistinctPermutationCount() const {
    std::unordered_set<uint64_t> seen;
    for (const auto& perm : permutations_) {
      seen.insert(PrefixKey(perm));
    }
    return seen.size();
  }

  /// The stored permutation (or prefix) of database point i.
  core::Permutation StoredPermutation(size_t i) const {
    return permutations_[i];
  }

  /// Decodes point i's permutation from the bit-packed buffer.  Records
  /// are fixed-width, so the reader seeks straight to record i in O(1).
  core::Permutation DecodePackedPermutation(size_t i) const {
    util::BitReader reader(packed_);
    if (prefix_ == sites_.size()) {
      const int width =
          util::BitsForFactorial(static_cast<int>(sites_.size()));
      reader.Seek(i * static_cast<size_t>(width));
      return core::UnrankPermutation(reader.Read(width), sites_.size());
    }
    const int width = util::BitsFor(sites_.size());
    reader.Seek(i * prefix_ * static_cast<size_t>(width));
    core::Permutation perm(prefix_);
    for (size_t r = 0; r < prefix_; ++r) {
      perm[r] = static_cast<uint8_t>(reader.Read(width));
    }
    return perm;
  }

  /// The sites used by the index.
  const std::vector<P>& sites() const { return sites_; }

  /// Stored prefix length (equals sites().size() for full permutations).
  size_t prefix_length() const { return prefix_; }

  /// Default fraction of the database verified per query.  Stored in an
  /// atomic so the engine can retune it while queries are in flight.
  double fraction() const {
    return fraction_.load(std::memory_order_relaxed);
  }
  void set_fraction(double fraction) {
    DP_CHECK(fraction > 0.0 && fraction <= 1.0);
    fraction_.store(fraction, std::memory_order_relaxed);
  }

 protected:
  std::vector<SearchResult> RangeQueryImpl(const P& query, double radius,
                                           QueryStats* stats) const override {
    std::vector<SearchResult> results;
    ScanByFootrule(query, VerifyBudget(), stats,
                   [&](size_t id, double d) {
                     if (d <= radius) results.push_back({id, d});
                     return true;
                   });
    SortResults(&results);
    return results;
  }

  std::vector<SearchResult> KnnQueryImpl(const P& query, size_t k,
                                         QueryStats* stats) const override {
    KnnCollector collector(k);
    ScanByFootrule(query, VerifyBudget(), stats,
                   [&](size_t id, double d) {
                     collector.Offer(id, d);
                     return true;
                   });
    return collector.Take();
  }

 private:
  void PackPermutation(const core::Permutation& perm,
                       util::BitWriter* writer) const {
    if (prefix_ == sites_.size()) {
      // Full permutation: densest fixed-width code, ceil(lg k!) bits.
      writer->Write(core::RankPermutation(perm),
                    util::BitsForFactorial(static_cast<int>(perm.size())));
      return;
    }
    // Prefix: one ceil(lg k)-bit field per entry.
    const int width = util::BitsFor(sites_.size());
    for (uint8_t site : perm) writer->Write(site, width);
  }

  uint64_t PrefixKey(const core::Permutation& perm) const {
    if (prefix_ == sites_.size()) return core::RankPermutation(perm);
    uint64_t key = 0;
    for (uint8_t site : perm) key = key * sites_.size() + site;
    return key;
  }

  size_t VerifyBudget() const {
    size_t budget = static_cast<size_t>(fraction() *
                                        static_cast<double>(data_.size()));
    return std::max<size_t>(1, std::min(budget, data_.size()));
  }

  int Footrule(const core::Permutation& query_perm,
               const core::Permutation& stored) const {
    if (prefix_ == sites_.size()) {
      return core::SpearmanFootrule(query_perm, stored);
    }
    return core::PrefixFootrule(query_perm, stored, sites_.size());
  }

  /// Computes the query permutation, orders the database by footrule
  /// distance to it (counting sort over the bounded footrule range), and
  /// verifies the first `budget` candidates.
  template <typename Visit>
  void ScanByFootrule(const P& query, size_t budget, QueryStats* stats,
                      Visit visit) const {
    const size_t k = sites_.size();
    std::vector<double> distances(k);
    for (size_t j = 0; j < k; ++j) {
      distances[j] = this->QueryDist(sites_[j], query, stats);
    }
    core::Permutation query_perm =
        prefix_ == k ? core::PermutationFromDistances(distances)
                     : core::PermutationPrefixFromDistances(distances,
                                                            prefix_);
    // Prefix footrule is bounded by k * prefix (each of the k sites
    // moves by at most prefix ranks); the full footrule by k^2/2.
    const size_t max_footrule =
        prefix_ == k ? static_cast<size_t>(core::MaxFootrule(k))
                     : k * prefix_;
    std::vector<std::vector<uint32_t>> buckets(max_footrule + 1);
    for (size_t i = 0; i < data_.size(); ++i) {
      int f = Footrule(query_perm, permutations_[i]);
      DP_CHECK(f >= 0 && static_cast<size_t>(f) <= max_footrule);
      buckets[static_cast<size_t>(f)].push_back(
          static_cast<uint32_t>(i));
    }
    size_t verified = 0;
    for (const auto& bucket : buckets) {
      for (uint32_t id : bucket) {
        if (verified >= budget) return;
        ++verified;
        if (!visit(id, this->QueryDist(data_[id], query, stats))) return;
      }
    }
  }

  std::vector<P> sites_;
  size_t prefix_ = 0;
  std::vector<core::Permutation> permutations_;
  std::vector<uint8_t> packed_;
  size_t packed_bits_ = 0;
  std::atomic<double> fraction_;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_DISTPERM_INDEX_H_
