// Tree metrics and the prefix distance (paper Section 3, Fig. 5).
//
// Shows that a library-call-number-style hierarchy under the prefix
// metric is a tree metric space; counts its distance permutations; and
// demonstrates the Corollary 5 extremal path where the C(k,2)+1 bound is
// met exactly, including the explicit split-edge structure.
//
//   ./example_tree_prefix_demo [--sites=6]

#include <iostream>
#include <string>
#include <vector>

#include "core/perm_counter.h"
#include "core/tree_count.h"
#include "metric/string_metrics.h"
#include "metric/tree_metric.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::core::Permutation;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t k = static_cast<size_t>(flags.value().GetInt("sites", 6));

  // --- Part 1: the prefix metric on a small call-number hierarchy.
  std::vector<std::string> catalogue = {
      "qa",      "qa76",    "qa76.9",  "qa76.9d3", "qa76.9d35",
      "qa76.73", "qa76.73c", "qa9",    "qa9.58",   "qc",
      "qc174",   "qc174.12", "z",      "z699",     "z699.35",
  };
  distperm::metric::Metric<std::string> prefix(
      (distperm::metric::PrefixMetric()));
  std::cout << "prefix distances in a call-number hierarchy (Fig. 5 "
               "style):\n";
  std::cout << "  d(qa76.9, qa76.73) = " << prefix("qa76.9", "qa76.73")
            << "  (shared prefix \"qa76.\")\n";
  std::cout << "  d(qa76.9, z699)    = " << prefix("qa76.9", "z699")
            << "  (no shared prefix)\n";

  std::vector<std::string> sites(catalogue.begin(), catalogue.begin() + 4);
  auto count =
      distperm::core::CountDistinctPermutations(catalogue, sites, prefix);
  std::cout << "\nwith 4 sites, the catalogue shows "
            << count.distinct_permutations
            << " distance permutations; the tree-metric bound C(4,2)+1 = "
            << distperm::core::TreePermutationBound(4) << "\n";

  // --- Part 2: Corollary 5 — the extremal path.
  std::cout << "\nCorollary 5 construction for k = " << k
            << ": path of 2^(k-1) = " << (1u << (k - 1))
            << " unit edges, sites at labels 0, 2, 4, ..., 2^(k-1)\n";
  auto pc = distperm::core::Corollary5Construction(k);
  size_t achieved =
      distperm::core::CountTreePermutationsBruteForce(pc.tree, pc.sites);
  std::cout << "permutations achieved: " << achieved << " = bound "
            << distperm::core::TreePermutationBound(k) << "\n";

  std::cout << "\nthe distinct permutations along the path (site indices, "
               "closest first):\n";
  auto perms =
      distperm::core::EnumerateTreePermutations(pc.tree, pc.sites);
  for (const Permutation& perm : perms) {
    std::cout << "  ";
    for (uint8_t site : perm) {
      std::cout << static_cast<int>(site) + 1 << " ";
    }
    std::cout << "\n";
  }
  std::cout << "(" << perms.size()
            << " permutations; every site pair contributes exactly one "
               "split edge, Theorem 4)\n";
  return 0;
}
