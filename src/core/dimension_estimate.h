// Permutation-count dimensionality estimation (paper Section 5).
//
// The paper observes that the number of distinct distance permutations a
// database exhibits for k sites can be compared with the Euclidean
// maxima N_{d,2}(k) to characterise the database's dimensionality "in a
// highly general way" (e.g. the nasa database behaves like a uniform
// Euclidean distribution of between three and four dimensions).  This
// module turns that observation into an estimator.

#ifndef DISTPERM_CORE_DIMENSION_ESTIMATE_H_
#define DISTPERM_CORE_DIMENSION_ESTIMATE_H_

#include <cstdint>
#include <vector>

namespace distperm {
namespace core {

/// Returns the (fractional) Euclidean dimension d such that N_{d,2}(k)
/// matches `observed_permutations`, interpolating linearly in
/// log N between consecutive integer dimensions.  Returns 0 when the
/// observed count is <= N_{0,2}(k) = 1 and `max_dimension` when the count
/// exceeds N_{max_dimension,2}(k).
double EstimateEuclideanDimension(uint64_t observed_permutations, int sites,
                                  int max_dimension = 32);

/// Combines estimates across several k values (median of per-k
/// estimates), which damps the saturation effects the paper notes when
/// k! or the database size caps the count.
double EstimateEuclideanDimensionMulti(
    const std::vector<std::pair<int, uint64_t>>& sites_and_counts,
    int max_dimension = 32);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_DIMENSION_ESTIMATE_H_
