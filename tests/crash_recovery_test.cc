// Crash recovery with a real process kill.
//
// The test forks a writer child that opens a durable store
// (fsync=always), inserts a deterministic stream of points, and
// compacts periodically, signalling the parent over a pipe right
// before each compaction.  The parent SIGKILLs the child on one of
// those signals — so the kill lands in or around a compaction, the
// hardest window (tmp snapshot write, WAL rotation, generation swap,
// old-file retirement) — then reopens the directory and requires that
// the recovered store is exactly the seed data plus a prefix of the
// insert stream, and answers queries fingerprint-identically to a
// fresh in-memory build over that same prefix.
//
// Which compaction triggers the kill rotates across invocations, so
// CI's `--gtest_repeat=20` loop sweeps the kill point through
// different phases of the rotation protocol.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "metric/lp.h"
#include "storage/env.h"
#include "util/rng.h"

namespace distperm {
namespace engine {
namespace {

using metric::Vector;

#if defined(__SANITIZE_THREAD__)
constexpr bool kForkUnsafe = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
constexpr bool kForkUnsafe = true;
#else
constexpr bool kForkUnsafe = false;
#endif
#else
constexpr bool kForkUnsafe = false;
#endif

constexpr size_t kBaseCount = 80;
constexpr size_t kStreamCount = 120;
constexpr size_t kInsertsPerCompact = 25;
constexpr uint64_t kSeed = 97;
const char kSpecTail[] = ",wal_dir=";

metric::Metric<Vector> L2() { return metric::LpMetric::L2(); }

std::vector<Vector> BaseData() {
  util::Rng rng(181);
  return dataset::UniformCube(kBaseCount, 3, &rng);
}

std::vector<Vector> StreamData() {
  util::Rng rng(182);
  return dataset::UniformCube(kStreamCount, 3, &rng);
}

std::string StoreSpec(const std::string& dir) {
  return std::string("vp-tree:fsync=always") + kSpecTail + dir;
}

/// The child's whole life.  No gtest here: any failure is an abnormal
/// exit code the parent turns into a test failure.
[[noreturn]] void WriterChild(const std::string& dir, int signal_fd) {
  auto live = LiveDatabase<Vector>::Open(BaseData(), L2(), 2,
                                         StoreSpec(dir), kSeed);
  if (!live.ok()) _exit(2);
  const std::vector<Vector> stream = StreamData();
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!live.value()->Insert(stream[i]).ok()) _exit(3);
    if ((i + 1) % kInsertsPerCompact == 0) {
      const char byte = 'c';
      if (::write(signal_fd, &byte, 1) != 1) _exit(4);
      if (!live.value()->Compact().ok()) _exit(5);
    }
  }
  _exit(0);
}

TEST(CrashRecovery, KillMidCompactionRecoversAckedPrefix) {
  if (kForkUnsafe) {
    GTEST_SKIP() << "fork-based crash test is not run under TSan";
  }
  storage::Env* env = storage::Env::Default();
  const std::string dir = ::testing::TempDir() + "/crash_recovery_store";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  auto stale = env->ListDir(dir);
  ASSERT_TRUE(stale.ok());
  for (const std::string& file : stale.value()) {
    ASSERT_TRUE(env->DeleteFile(dir + "/" + file).ok());
  }

  // Rotate the kill point across repeated invocations (gtest_repeat
  // keeps static state), so the SIGKILL sweeps the rotation protocol.
  static int invocation = 0;
  const int kill_on_signal = invocation++ % 4 + 1;

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    WriterChild(dir, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);

  int signals_seen = 0;
  char byte;
  while (signals_seen < kill_on_signal &&
         ::read(pipe_fds[0], &byte, 1) == 1) {
    ++signals_seen;
  }
  ::close(pipe_fds[0]);
  // Kill as the child enters (or is inside) its compaction.  If the
  // child already finished the whole stream, the kill is a no-op and
  // recovery must produce the complete dataset — also a valid case.
  ::kill(child, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  if (WIFEXITED(wait_status)) {
    ASSERT_EQ(WEXITSTATUS(wait_status), 0)
        << "writer child failed before the kill";
  } else {
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);
  }

  // Reboot: recover the store from disk alone.
  auto live = LiveDatabase<Vector>::Open({}, L2(), 2, StoreSpec(dir), kSeed);
  ASSERT_TRUE(live.ok()) << live.status();
  const std::vector<Vector> recovered = live.value()->Pin().Materialize();

  // fsync=always and no removes: the recovered view must hold exactly
  // the base data plus a prefix of the insert stream.  Routed
  // compaction groups points by owning shard, so the materialized
  // order is not insert order — compare as multisets.
  const std::vector<Vector> base = BaseData();
  const std::vector<Vector> stream = StreamData();
  ASSERT_GE(recovered.size(), base.size());
  ASSERT_LE(recovered.size(), base.size() + stream.size());
  const size_t acked = recovered.size() - base.size();
  ASSERT_GE(acked, kill_on_signal * kInsertsPerCompact)
      << "inserts acked before the signalled compaction must survive";
  std::vector<Vector> want_points = base;
  want_points.insert(want_points.end(), stream.begin(),
                     stream.begin() + acked);
  std::vector<Vector> got_points = recovered;
  std::sort(got_points.begin(), got_points.end());
  std::sort(want_points.begin(), want_points.end());
  ASSERT_EQ(got_points, want_points)
      << "recovered store is not base + a " << acked
      << "-insert prefix of the stream";

  // And the recovered store answers exactly like a fresh build over
  // the recovered dataset.  Id spaces differ (the recovered store may
  // carry replayed WAL inserts as delta entries), so compare
  // (distance, point) fingerprints.
  auto fresh = LiveDatabase<Vector>::Open(recovered, L2(), 2, "vp-tree",
                                          kSeed);
  ASSERT_TRUE(fresh.ok());
  std::vector<QuerySpec<Vector>> batch;
  util::Rng qrng(183);
  for (int q = 0; q < 4; ++q) {
    batch.push_back(QuerySpec<Vector>::Knn(
        {qrng.NextDouble(), qrng.NextDouble(), qrng.NextDouble()}, 9));
  }
  auto snapshot = live.value()->Pin();
  auto got = live.value()->RunBatch(batch);
  auto want = fresh.value()->RunBatch(batch);
  ASSERT_TRUE(got.all_ok());
  ASSERT_TRUE(want.all_ok());
  for (size_t q = 0; q < batch.size(); ++q) {
    std::vector<std::pair<double, Vector>> got_pairs, want_pairs;
    for (const auto& r : got.results[q]) {
      auto point = snapshot.ResolvePoint(r.id);
      ASSERT_TRUE(point.ok()) << "query " << q << " id " << r.id;
      got_pairs.emplace_back(r.distance, point.value());
    }
    for (const auto& r : want.results[q]) {
      want_pairs.emplace_back(r.distance, recovered.at(r.id));
    }
    std::sort(got_pairs.begin(), got_pairs.end());
    std::sort(want_pairs.begin(), want_pairs.end());
    EXPECT_EQ(got_pairs, want_pairs) << "query " << q;
  }
}

// ---------------------------------------------------- removes + sweep
//
// The same fork+SIGKILL harness over a write stream that also removes
// — base points in the first window (dirtying their owning shards for
// the incremental rotation) and freshly inserted points in every
// window.  fsync=always makes the acked op sequence a strict prefix of
// the deterministic op stream, so the parent can simulate every prefix
// and require the recovered live set to equal one of them: that single
// multiset equality rules out both lost acked writes AND resurrected
// removed points, at every kill point of the incremental rotation.

/// One scripted writer operation.  Removal targets are expressed so
/// the child needs no id bookkeeping across compactions: a base id is
/// only removed in the first window (generation-1 ids are stable until
/// the first fold), and an inserted point is only removed within the
/// window that inserted it (pending ids are stable between folds).
struct ScriptOp {
  enum Kind { kInsert, kRemoveBase, kRemoveLastInsert } kind;
  size_t index = 0;  ///< stream index (kInsert) or base id (kRemoveBase)
};

std::vector<ScriptOp> RemoveScript() {
  std::vector<ScriptOp> ops;
  const std::vector<Vector> stream = StreamData();
  for (size_t i = 0; i < stream.size(); ++i) {
    ops.push_back({ScriptOp::kInsert, i});
    const size_t in_window = i % kInsertsPerCompact;
    // Never directly after a window-final insert: the compaction that
    // follows it would remap the id the child still holds.
    if (in_window % 5 == 3) {
      ops.push_back({ScriptOp::kRemoveLastInsert, i});
    }
    if (i < kInsertsPerCompact && in_window % 8 == 6) {
      ops.push_back({ScriptOp::kRemoveBase, (in_window / 8) * 5 + 2});
    }
  }
  return ops;
}

/// The live multiset after the first `prefix` script ops.
std::vector<Vector> SimulateScript(size_t prefix) {
  const std::vector<Vector> base = BaseData();
  const std::vector<Vector> stream = StreamData();
  const std::vector<ScriptOp> ops = RemoveScript();
  std::vector<bool> base_alive(base.size(), true);
  std::vector<bool> stream_alive(stream.size(), false);
  for (size_t i = 0; i < prefix && i < ops.size(); ++i) {
    switch (ops[i].kind) {
      case ScriptOp::kInsert:
        stream_alive[ops[i].index] = true;
        break;
      case ScriptOp::kRemoveBase:
        base_alive[ops[i].index] = false;
        break;
      case ScriptOp::kRemoveLastInsert:
        stream_alive[ops[i].index] = false;
        break;
    }
  }
  std::vector<Vector> live;
  for (size_t i = 0; i < base.size(); ++i) {
    if (base_alive[i]) live.push_back(base[i]);
  }
  for (size_t i = 0; i < stream.size(); ++i) {
    if (stream_alive[i]) live.push_back(stream[i]);
  }
  std::sort(live.begin(), live.end());
  return live;
}

[[noreturn]] void RemovingWriterChild(const std::string& dir,
                                      int signal_fd) {
  auto live = LiveDatabase<Vector>::Open(BaseData(), L2(), 2,
                                         StoreSpec(dir), kSeed);
  if (!live.ok()) _exit(2);
  const std::vector<Vector> stream = StreamData();
  const std::vector<ScriptOp> ops = RemoveScript();
  size_t last_insert_id = 0;
  size_t inserts_done = 0;
  for (const ScriptOp& op : ops) {
    switch (op.kind) {
      case ScriptOp::kInsert: {
        auto id = live.value()->Insert(stream[op.index]);
        if (!id.ok()) _exit(3);
        last_insert_id = id.value();
        ++inserts_done;
        break;
      }
      case ScriptOp::kRemoveBase:
        if (!live.value()->Remove(op.index).ok()) _exit(6);
        break;
      case ScriptOp::kRemoveLastInsert:
        if (!live.value()->Remove(last_insert_id).ok()) _exit(7);
        break;
    }
    if (op.kind == ScriptOp::kInsert &&
        inserts_done % kInsertsPerCompact == 0) {
      const char byte = 'c';
      if (::write(signal_fd, &byte, 1) != 1) _exit(4);
      if (!live.value()->Compact().ok()) _exit(5);
    }
  }
  _exit(0);
}

TEST(CrashRecovery, KillSweepWithRemovesLosesNothingResurrectsNothing) {
  if (kForkUnsafe) {
    GTEST_SKIP() << "fork-based crash test is not run under TSan";
  }
  storage::Env* env = storage::Env::Default();
  const std::string dir = ::testing::TempDir() + "/crash_recovery_removes";
  ASSERT_TRUE(env->CreateDir(dir).ok());
  auto stale = env->ListDir(dir);
  ASSERT_TRUE(stale.ok());
  for (const std::string& file : stale.value()) {
    ASSERT_TRUE(env->DeleteFile(dir + "/" + file).ok());
  }

  static int invocation = 0;
  const int kill_on_signal = invocation++ % 4 + 1;

  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    RemovingWriterChild(dir, pipe_fds[1]);  // never returns
  }
  ::close(pipe_fds[1]);

  int signals_seen = 0;
  char byte;
  while (signals_seen < kill_on_signal &&
         ::read(pipe_fds[0], &byte, 1) == 1) {
    ++signals_seen;
  }
  ::close(pipe_fds[0]);
  ::kill(child, SIGKILL);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  if (WIFEXITED(wait_status)) {
    ASSERT_EQ(WEXITSTATUS(wait_status), 0)
        << "writer child failed before the kill";
  } else {
    ASSERT_TRUE(WIFSIGNALED(wait_status));
    ASSERT_EQ(WTERMSIG(wait_status), SIGKILL);
  }

  auto live = LiveDatabase<Vector>::Open({}, L2(), 2, StoreSpec(dir), kSeed);
  ASSERT_TRUE(live.ok()) << live.status();
  std::vector<Vector> recovered = live.value()->Pin().Materialize();
  std::sort(recovered.begin(), recovered.end());

  // The acked ops are a prefix of the script (fsync=always, one
  // synchronous writer).  Find the prefix the recovered store equals;
  // anything else means a lost acked write or a resurrected remove.
  const std::vector<ScriptOp> ops = RemoveScript();
  // Everything through the (kill_on_signal * kInsertsPerCompact)-th
  // insert was acked before the child signalled (the signal fires
  // right after that insert), so at least that prefix must survive.
  size_t min_prefix = 0;
  size_t inserts_seen = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == ScriptOp::kInsert) {
      ++inserts_seen;
      if (inserts_seen ==
          static_cast<size_t>(kill_on_signal) * kInsertsPerCompact) {
        min_prefix = i + 1;
        break;
      }
    }
  }
  bool matched = false;
  for (size_t prefix = min_prefix; prefix <= ops.size(); ++prefix) {
    if (SimulateScript(prefix) == recovered) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched)
      << "recovered live set (size " << recovered.size()
      << ") matches no acked prefix of the op script with at least "
      << min_prefix << " ops";

  // The recovered store must still be writable and compactable.
  ASSERT_TRUE(live.value()->Insert({9.0, 9.0, 9.0}).ok());
  ASSERT_TRUE(live.value()->Compact().ok());
}

}  // namespace
}  // namespace engine
}  // namespace distperm
