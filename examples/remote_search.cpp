// Remote search client: connect to an example_serve instance, run kNN
// batches over the wire, and report throughput plus cache behavior.
//
//   ./example_remote_search [--host=127.0.0.1] [--port=7471]
//                           [--queries=64] [--k=8] [--dim=16]
//                           [--seed=7] [--repeat=1] [--inserts=0]
//                           [--ping-only]
//
// --ping-only makes a single Ping round trip and exits — CI's smoke
// job uses it as a readiness probe.  --repeat > 1 re-sends the same
// batch, so a cache-enabled server answers later rounds from its perm
// cache (watch the reported cache_hits).  Exits nonzero on any failed
// response.

#include <chrono>
#include <iostream>

#include "dataset/vector_gen.h"
#include "index/search.h"
#include "metric/lp.h"
#include "net/client.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const distperm::util::Flags& f = flags.value();
  const std::string host = f.GetString("host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(f.GetInt("port", 7471));
  const size_t queries = static_cast<size_t>(f.GetInt("queries", 64));
  const size_t k = static_cast<size_t>(f.GetInt("k", 8));
  const size_t dim = static_cast<size_t>(f.GetInt("dim", 16));
  const uint64_t seed = static_cast<uint64_t>(f.GetInt("seed", 7));
  const size_t repeat = static_cast<size_t>(f.GetInt("repeat", 1));
  const size_t inserts = static_cast<size_t>(f.GetInt("inserts", 0));

  auto connected = distperm::net::Client::Connect(host, port);
  if (!connected.ok()) {
    std::cerr << connected.status() << "\n";
    return 1;
  }
  distperm::net::Client& client = *connected.value();

  if (f.GetBool("ping-only", false)) {
    if (auto status = client.Ping(); !status.ok()) {
      std::cerr << status << "\n";
      return 1;
    }
    std::cout << "pong\n";
    return 0;
  }

  distperm::util::Rng rng(seed);
  const std::vector<Vector> probes =
      distperm::dataset::UniformCube(queries, dim, &rng);
  std::vector<distperm::index::SearchRequest<Vector>> batch;
  batch.reserve(queries);
  for (const Vector& probe : probes) {
    batch.push_back(
        distperm::index::SearchRequest<Vector>::Knn(probe, k));
  }

  for (size_t i = 0; i < inserts; ++i) {
    const Vector extra = distperm::dataset::UniformCube(1, dim, &rng)[0];
    auto response = client.Insert(extra);
    if (!response.ok() || !response.value().status.ok()) {
      std::cerr << "insert failed\n";
      return 1;
    }
    std::cout << "inserted id " << response.value().id << "\n";
  }

  size_t failed = 0;
  for (size_t round = 0; round < repeat; ++round) {
    const auto start = std::chrono::steady_clock::now();
    auto responses = client.SearchBatch(batch);
    const auto elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (!responses.ok()) {
      std::cerr << responses.status() << "\n";
      return 1;
    }
    size_t cache_hits = 0;
    size_t bound_seeds = 0;
    uint64_t distance_computations = 0;
    for (const auto& response : responses.value()) {
      if (!response.status.ok()) {
        std::cerr << "query failed: " << response.status.message << "\n";
        ++failed;
      }
      if (response.cache_hit) ++cache_hits;
      if (response.bound_seeded) ++bound_seeds;
      distance_computations += response.stats.distance_computations;
    }
    std::cout << "round " << (round + 1) << ": " << queries
              << " queries in " << elapsed << "s ("
              << static_cast<uint64_t>(queries / elapsed)
              << " qps), cache_hits=" << cache_hits
              << ", bound_seeds=" << bound_seeds
              << ", distance_computations=" << distance_computations
              << "\n";
  }
  return failed == 0 ? 0 : 1;
}
