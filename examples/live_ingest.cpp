// Live ingest walkthrough: open a generation-versioned LiveDatabase,
// serve queries while inserting and removing points, pin a snapshot
// across a compaction, and watch the generation swap retire the old
// shards.
//
//   ./example_live_ingest [--points=2000] [--dim=8] [--shards=4]
//                         [--index=vp-tree] [--seed=42]

#include <iostream>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::engine::LiveDatabase;
using distperm::engine::QuerySpec;
using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 2000));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 8));
  const size_t shards =
      static_cast<size_t>(flags.value().GetInt("shards", 4));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 42));
  const std::string index = flags.value().GetString("index", "vp-tree");

  // 1. Open the store: generation 1 is built like any ShardedDatabase;
  //    the live knobs ride in the spec string.
  distperm::util::Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  // The live knobs join the spec's option list, so the separator
  // depends on whether --index already carries options.
  const std::string live_spec =
      index + (index.find(':') == std::string::npos ? ":" : ",") +
      "delta_scan_limit=1024,auto_compact_threshold=256";
  auto opened = LiveDatabase<Vector>::Open(data, l2, shards, live_spec, seed);
  if (!opened.ok()) {
    std::cerr << opened.status() << "\n";
    return 1;
  }
  LiveDatabase<Vector>& live = *opened.value();
  std::cout << "opened " << live.index_spec() << " x " << shards
            << " shards, generation " << live.generation_number()
            << ", n=" << live.size() << "\n";

  // 2. Writes go to the delta buffer and are visible immediately.
  Vector hot(dim, 0.5);
  auto id = live.Insert(hot);
  if (!id.ok()) {
    std::cerr << id.status() << "\n";
    return 1;
  }
  auto out = live.RunBatch({QuerySpec<Vector>::Knn(hot, 1)});
  std::cout << "inserted id " << id.value() << "; 1-NN of it is id "
            << out.results[0][0].id << " at distance "
            << out.results[0][0].distance << " (delta="
            << live.delta_entries() << " pending)\n";

  // 3. A pinned snapshot is immune to everything that happens later —
  //    including the removal below and the compaction's generation
  //    swap.  In-flight batches finish on the generation they pinned.
  auto snapshot = live.Pin();
  if (auto status = live.Remove(id.value()); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  if (auto status = live.Compact(); !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  std::cout << "after Remove+Compact: generation "
            << live.generation_number() << ", n=" << live.size()
            << ", delta=" << live.delta_entries()
            << "; pinned view still holds generation "
            << snapshot.generation_number() << " with "
            << snapshot.live_size() << " points\n";

  // 4. The frozen view still serves the point; the current view
  //    doesn't.  Serving threads bring their own QueryEngine.
  distperm::engine::QueryEngine<Vector> engine(2);
  auto frozen =
      live.RunBatch(engine, snapshot, {QuerySpec<Vector>::Knn(hot, 1)});
  out = live.RunBatch({QuerySpec<Vector>::Knn(hot, 1)});
  std::cout << "1-NN distance of the removed point: pinned view "
            << frozen.results[0][0].distance << ", current view "
            << out.results[0][0].distance << "\n";

  std::cout << "done\n";
  return 0;
}
