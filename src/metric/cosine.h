// Angle ("cosine") distance on sparse document vectors.
//
// The SISAP sample databases `long` and `short` are feature vectors
// extracted from news articles, compared with the angle between vectors
// (arccos of the cosine similarity), which is a true metric on the unit
// sphere.  We reproduce that space for the synthetic document databases.

#ifndef DISTPERM_METRIC_COSINE_H_
#define DISTPERM_METRIC_COSINE_H_

#include <algorithm>
#include <cmath>
#include <string>

#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace metric {

/// Dot product of two sparse vectors (both sorted by dimension id).
double SparseDot(const SparseVector& a, const SparseVector& b);

/// Euclidean norm of a sparse vector.
double SparseNorm(const SparseVector& a);

/// Angle distance in radians: arccos(cos-similarity), clamped to [0, pi].
/// Fatal if either vector has zero norm.
double AngleDistance(const SparseVector& a, const SparseVector& b);

/// Angle distance on dense vectors.
double AngleDistanceDense(const Vector& a, const Vector& b);

/// Angle from a dot product and the two vector norms — the single
/// definition of the clamp + arccos step, shared by the scalar dense
/// path and the flat blocked path (which precomputes the norms), so
/// both produce bit-identical distances.  Fatal on a zero norm.
inline double AngleFromParts(double dot, double norm_a, double norm_b) {
  DP_CHECK_MSG(norm_a > 0 && norm_b > 0, "angle distance of zero vector");
  return std::acos(std::clamp(dot / (norm_a * norm_b), -1.0, 1.0));
}

/// Metric wrapper for sparse angle distance.
class AngleMetric {
 public:
  double operator()(const SparseVector& a, const SparseVector& b) const {
    return AngleDistance(a, b);
  }
  std::string name() const { return "angle"; }
};

/// Metric wrapper for dense angle distance.  Tagged with kAngle so
/// vector indexes can precompute per-row norms and evaluate blocks of
/// dot products through the flat kernels.
class DenseAngleMetric {
 public:
  double operator()(const Vector& a, const Vector& b) const {
    return AngleDistanceDense(a, b);
  }
  std::string name() const { return "angle"; }
  VectorKernelKind vector_kernel() const { return VectorKernelKind::kAngle; }
};

}  // namespace metric
}  // namespace distperm

#endif  // DISTPERM_METRIC_COSINE_H_
