// Deterministic pseudo-random number generation.
//
// Every experiment in the repository is seeded, so that tables can be
// regenerated bit-for-bit.  We use xoshiro256** (Blackman & Vigna) seeded
// through SplitMix64, which is the recommended seeding procedure: it
// guarantees a well-mixed nonzero state from any 64-bit seed.

#ifndef DISTPERM_UTIL_RNG_H_
#define DISTPERM_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace util {

/// SplitMix64: a tiny, statistically strong 64-bit generator, used here
/// to seed xoshiro and for cheap one-off hashing of seeds.
class SplitMix64 {
 public:
  /// Constructs a generator with the given state/seed.
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit output.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256**: fast all-purpose 64-bit generator with 256-bit state.
///
/// Satisfies the requirements of a C++ UniformRandomBitGenerator, so it can
/// also be plugged into <random> distributions if desired.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed (expanded via SplitMix64).
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }
  /// UniformRandomBitGenerator interface: same as NextU64().
  result_type operator()() { return NextU64(); }

  /// Returns the next raw 64-bit output.
  uint64_t NextU64();

  /// Returns a uniform integer in [0, bound).  Uses Lemire's unbiased
  /// multiply-shift rejection method.  `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Returns a standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  /// Returns a uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Returns `count` distinct indices sampled uniformly from [0, n).
  /// Requires count <= n.  Order of the returned indices is random.
  std::vector<size_t> SampleDistinct(size_t n, size_t count);

  /// Spawns an independent generator; deterministic given this generator's
  /// state.  Used to give each parallel experiment its own stream.
  Rng Split();

 private:
  uint64_t state_[4];
  // Cached second output of the polar method.
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace util
}  // namespace distperm

#endif  // DISTPERM_UTIL_RNG_H_
