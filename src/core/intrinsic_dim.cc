#include "core/intrinsic_dim.h"

namespace distperm {
namespace core {

DistanceStats ComputeDistanceStats(const std::vector<double>& distances) {
  DistanceStats stats;
  stats.samples = distances.size();
  if (distances.empty()) return stats;
  double sum = 0.0;
  for (double d : distances) sum += d;
  stats.mean = sum / static_cast<double>(distances.size());
  double ss = 0.0;
  for (double d : distances) {
    double diff = d - stats.mean;
    ss += diff * diff;
  }
  stats.variance = ss / static_cast<double>(distances.size());
  if (stats.variance > 0.0) {
    stats.rho = stats.mean * stats.mean / (2.0 * stats.variance);
  }
  return stats;
}

}  // namespace core
}  // namespace distperm
