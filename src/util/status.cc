#include "util/status.h"

namespace distperm {
namespace util {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::cerr << "DP_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!extra.empty()) std::cerr << " (" << extra << ")";
  std::cerr << std::endl;
  std::abort();
}

}  // namespace internal
}  // namespace util
}  // namespace distperm
