#include "dataset/sisap_synth.h"

#include <algorithm>
#include <cmath>

#include "dataset/doc_gen.h"
#include "dataset/string_gen.h"
#include "dataset/vector_gen.h"
#include "util/rng.h"

namespace distperm {
namespace dataset {
namespace {

uint64_t MixSeed(uint64_t seed, const std::string& name) {
  util::SplitMix64 sm(seed);
  uint64_t h = sm.Next();
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const std::vector<SisapDatabaseInfo>& SisapCatalogue() {
  static const std::vector<SisapDatabaseInfo> kCatalogue = {
      {"Dutch", 229328, 7.159, SisapKind::kDictionary, "levenshtein"},
      {"English", 69069, 8.492, SisapKind::kDictionary, "levenshtein"},
      {"French", 138257, 10.510, SisapKind::kDictionary, "levenshtein"},
      {"German", 75086, 7.383, SisapKind::kDictionary, "levenshtein"},
      {"Italian", 116879, 10.436, SisapKind::kDictionary, "levenshtein"},
      {"Norwegian", 85637, 5.503, SisapKind::kDictionary, "levenshtein"},
      {"Spanish", 86061, 8.722, SisapKind::kDictionary, "levenshtein"},
      {"listeria", 20660, 0.894, SisapKind::kDna, "levenshtein"},
      {"long", 1265, 2.603, SisapKind::kDocuments, "angle"},
      {"short", 25276, 808.739, SisapKind::kDocuments, "angle"},
      {"colors", 112544, 2.745, SisapKind::kVectors, "L2"},
      {"nasa", 40150, 5.186, SisapKind::kVectors, "L2"},
  };
  return kCatalogue;
}

util::Result<SisapDatabaseInfo> FindSisapDatabase(const std::string& name) {
  for (const auto& info : SisapCatalogue()) {
    if (info.name == name) return info;
  }
  return util::Status::NotFound("no SISAP stand-in named " + name);
}

size_t ScaledCardinality(const SisapDatabaseInfo& info, double scale) {
  DP_CHECK(scale > 0.0);
  double n = std::round(static_cast<double>(info.paper_n) * scale);
  return static_cast<size_t>(std::max(64.0, n));
}

std::vector<std::string> MakeStringDatabase(const std::string& name,
                                            double scale, uint64_t seed) {
  auto lookup = FindSisapDatabase(name);
  DP_CHECK_MSG(lookup.ok(), lookup.status().ToString());
  const SisapDatabaseInfo& info = lookup.value();
  util::Rng rng(MixSeed(seed, name));
  size_t n = ScaledCardinality(info, scale);
  if (info.kind == SisapKind::kDictionary) {
    // Word-length profiles loosely matched to the language: rho in the
    // paper tracks how "spread out" the dictionary is; longer words with
    // a larger alphabet raise it.
    LanguageProfile profile;
    profile.name = name;
    profile.alphabet = 26;
    if (name == "French" || name == "Italian") {
      profile.mean_length = 10.5;
      profile.sd_length = 3.0;
    } else if (name == "Norwegian") {
      profile.mean_length = 8.0;
      profile.sd_length = 2.5;
    } else {
      profile.mean_length = 9.5;
      profile.sd_length = 3.0;
    }
    MarkovWordGenerator generator(profile);
    return generator.Dictionary(n, &rng);
  }
  DP_CHECK_MSG(info.kind == SisapKind::kDna,
               name + " is not a string database");
  // listeria: gene fragments; few ancestral families, heavy mutation
  // clustering gives the paper's strikingly low rho (~0.9).
  return DnaSequences(n, /*families=*/8, /*min_length=*/12,
                      /*max_length=*/40, /*mutation_rate=*/0.08, &rng);
}

std::vector<metric::SparseVector> MakeDocDatabase(const std::string& name,
                                                  double scale,
                                                  uint64_t seed) {
  auto lookup = FindSisapDatabase(name);
  DP_CHECK_MSG(lookup.ok(), lookup.status().ToString());
  const SisapDatabaseInfo& info = lookup.value();
  DP_CHECK_MSG(info.kind == SisapKind::kDocuments,
               name + " is not a document database");
  util::Rng rng(MixSeed(seed, name));
  size_t n = ScaledCardinality(info, scale);
  DocCorpusProfile profile;
  if (name == "long") {
    // Long news articles: many terms per document, heavy shared
    // vocabulary and wide length variation, giving the broad distance
    // distribution behind the paper's low rho (~2.6).
    profile.vocabulary = 8000;
    profile.topics = 12;
    profile.terms_per_doc = 150;
    profile.stopwords = 40;
    profile.stopword_fraction = 0.55;
    profile.stopword_fraction_spread = 0.42;
    profile.length_spread = 0.9;
  } else {
    // Short snippets: few terms each, nearly orthogonal topical
    // supports plus a thin shared stopword layer.  Distances concentrate
    // just below pi/2 — tiny variance, hence the paper's enormous rho
    // (~809) — while remaining distinct enough that nearly every point
    // carries its own permutation.
    profile.vocabulary = 20000;
    profile.topics = 200;
    profile.terms_per_doc = 10;
    profile.stopwords = 25;
    profile.stopword_fraction = 0.28;
    profile.stopword_fraction_spread = 0.04;
    profile.length_spread = 0.3;
  }
  return DocumentVectors(n, profile, &rng);
}

std::vector<metric::Vector> MakeVectorDatabase(const std::string& name,
                                               double scale, uint64_t seed) {
  auto lookup = FindSisapDatabase(name);
  DP_CHECK_MSG(lookup.ok(), lookup.status().ToString());
  const SisapDatabaseInfo& info = lookup.value();
  DP_CHECK_MSG(info.kind == SisapKind::kVectors,
               name + " is not a vector database");
  util::Rng rng(MixSeed(seed, name));
  size_t n = ScaledCardinality(info, scale);
  if (name == "colors") {
    // 112-dimensional colour histograms, intrinsic dimension ~2.7.
    return HistogramCloud(n, 112, /*bumps=*/3, &rng);
  }
  // nasa: 20-dimensional feature vectors, intrinsic dimension ~5.
  return LowDimEmbedding(n, /*ambient_d=*/20, /*intrinsic_d=*/5,
                         /*noise=*/0.01, &rng);
}

}  // namespace dataset
}  // namespace distperm
