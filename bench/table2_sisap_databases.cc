// Reproduces paper Table 2: number of distinct distance permutations in
// the SISAP sample databases for k = 3..12 random sites, plus n and the
// intrinsic dimensionality rho.
//
// The SISAP corpora are not available offline, so synthetic stand-ins
// with matched cardinality, point type, metric and clustering structure
// are generated (see DESIGN.md §4).  Absolute counts therefore differ
// from the paper; the qualitative shape (k!-limited counts at small k,
// counts far below both k! and n at large k, very low counts for
// listeria/colors/long) is the reproduction target.
//
// Usage: table2_sisap_databases [--scale=0.05] [--seed=42] [--max-k=12]
//   --scale multiplies each database's cardinality (1.0 = paper size).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/intrinsic_dim.h"
#include "core/perm_counter.h"
#include "dataset/sisap_synth.h"
#include "metric/cosine.h"
#include "metric/lp.h"
#include "metric/string_metrics.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

using distperm::core::CountForSitePrefixes;
using distperm::core::EstimateIntrinsicDimensionality;
using distperm::core::SelectRandomSites;
using distperm::dataset::SisapDatabaseInfo;
using distperm::dataset::SisapKind;
using distperm::metric::Metric;
using distperm::util::Rng;
using distperm::util::TablePrinter;

struct RowResult {
  std::string name;
  size_t n = 0;
  double rho = 0.0;
  std::vector<size_t> counts;  // one per k
};

template <typename P>
RowResult MeasureDatabase(const SisapDatabaseInfo& info,
                          const std::vector<P>& data,
                          const Metric<P>& metric,
                          const std::vector<size_t>& ks, uint64_t seed) {
  Rng rng(seed);
  RowResult row;
  row.name = info.name;
  row.n = data.size();
  row.rho = EstimateIntrinsicDimensionality(data, metric,
                                            /*pairs=*/20000, &rng)
                .rho;
  size_t max_k = ks.back();
  auto sites = SelectRandomSites(data, max_k, &rng);
  auto results = CountForSitePrefixes(data, sites, metric, ks);
  for (const auto& result : results) {
    row.counts.push_back(result.distinct_permutations);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const double scale = flags.value().GetDouble("scale", 0.05);
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 42));
  const size_t max_k =
      static_cast<size_t>(flags.value().GetInt("max-k", 12));

  std::vector<size_t> ks;
  for (size_t k = 3; k <= max_k; ++k) ks.push_back(k);

  std::cout << "Table 2: distance permutations in the (synthetic) SISAP "
               "sample databases\n";
  std::cout << "scale=" << scale << " (1.0 = paper cardinality), seed="
            << seed << "\n\n";

  Metric<std::string> levenshtein((distperm::metric::LevenshteinMetric()));
  Metric<distperm::metric::SparseVector> angle(
      (distperm::metric::AngleMetric()));
  Metric<distperm::metric::Vector> l2(distperm::metric::LpMetric::L2());

  TablePrinter table;
  std::vector<std::string> header = {"Database", "n", "rho(paper)", "rho"};
  for (size_t k : ks) header.push_back("k=" + std::to_string(k));
  table.SetHeader(header);

  for (const auto& info : distperm::dataset::SisapCatalogue()) {
    RowResult row;
    switch (info.kind) {
      case SisapKind::kDictionary:
      case SisapKind::kDna: {
        auto data =
            distperm::dataset::MakeStringDatabase(info.name, scale, seed);
        row = MeasureDatabase(info, data, levenshtein, ks, seed + 1);
        break;
      }
      case SisapKind::kDocuments: {
        auto data =
            distperm::dataset::MakeDocDatabase(info.name, scale, seed);
        row = MeasureDatabase(info, data, angle, ks, seed + 1);
        break;
      }
      case SisapKind::kVectors: {
        auto data =
            distperm::dataset::MakeVectorDatabase(info.name, scale, seed);
        row = MeasureDatabase(info, data, l2, ks, seed + 1);
        break;
      }
    }
    char rho_paper[32], rho_measured[32];
    std::snprintf(rho_paper, sizeof(rho_paper), "%.3f", info.paper_rho);
    std::snprintf(rho_measured, sizeof(rho_measured), "%.3f", row.rho);
    std::vector<std::string> cells = {row.name, std::to_string(row.n),
                                      rho_paper, rho_measured};
    for (size_t count : row.counts) cells.push_back(std::to_string(count));
    table.AddRow(cells);
    std::cerr << "measured " << row.name << "\n";
  }
  table.Print(std::cout);
  std::cout << "\nReading guide (paper's observations to compare):\n"
               "  * small k: counts saturate at k! (6, 24, ~120)\n"
               "  * large k: counts far below both k! and n\n"
               "  * listeria/long/colors: far fewer permutations than the\n"
               "    dictionaries at the same k (low-dimensional data)\n";
  return 0;
}
