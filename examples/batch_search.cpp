// Batch search demo: shard a database across indexes chosen at runtime
// from the index registry, serve a mixed kNN/range batch through the
// concurrent QueryEngine, and compare the merged answers and cost
// accounting against an exact linear scan.
//
//   ./example_batch_search [--index=vp-tree] [--points=20000] [--dim=4]
//                          [--shards=4] [--threads=4] [--batch=32]
//
// --index accepts any registry spec, e.g. "laesa:k=16" or
// "distperm:k=8,fraction=0.2" (see example_search_cli --list).

#include <iostream>
#include <memory>
#include <string>

#include "dataset/vector_gen.h"
#include "engine/batch_stats.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "engine/sharded_database.h"
#include "index/linear_scan.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::engine::QueryEngine;
using distperm::engine::QuerySpec;
using distperm::engine::ShardedDatabase;
using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const std::string spec = flags.value().GetString("index", "vp-tree");
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 20000));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 4));
  const size_t shards =
      static_cast<size_t>(flags.value().GetInt("shards", 4));
  const size_t threads =
      static_cast<size_t>(flags.value().GetInt("threads", 4));
  const size_t batch_size =
      static_cast<size_t>(flags.value().GetInt("batch", 32));
  if (batch_size < 2) {
    std::cerr << "--batch must be at least 2 (one kNN + one range query)\n";
    return 1;
  }

  // 1. Generate a database and shard it: one registry-built index per
  //    contiguous slice, each with its own deterministic RNG stream.
  distperm::util::Rng rng(2026);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  auto db = ShardedDatabase<Vector>::BuildFromRegistry(data, l2, shards,
                                                       spec, 9000);
  if (!db.ok()) {
    std::cerr << "failed to build '" << spec << "': " << db.status()
              << "\n";
    return 1;
  }
  std::cout << "sharded database: " << db.value().size() << " points over "
            << db.value().shard_count() << " " << db.value().index_name()
            << " shards (" << db.value().build_distance_computations()
            << " build distances)\n";

  // 2. Assemble a mixed batch: half 10-NN queries, half range queries.
  std::vector<QuerySpec<Vector>> batch;
  for (size_t q = 0; q < batch_size; ++q) {
    Vector point(dim);
    for (auto& coord : point) coord = rng.NextDouble();
    if (q % 2 == 0) {
      batch.push_back(QuerySpec<Vector>::Knn(point, 10));
    } else {
      batch.push_back(QuerySpec<Vector>::Range(point, 0.1));
    }
  }

  // 3. Serve the batch on a worker pool.
  QueryEngine<Vector> engine(&db.value(), threads);
  auto out = engine.RunBatch(batch);
  if (!out.all_ok()) {
    std::cerr << "some queries were rejected\n";
    return 1;
  }
  std::cout << "batch of " << out.stats.query_count << " queries on "
            << out.stats.thread_count << " threads: "
            << out.stats.wall_seconds * 1e3 << " ms wall, "
            << out.stats.distance_computations << " metric evaluations ("
            << out.stats.distance_computations / batch.size()
            << "/query; a linear scan would use " << points << ")\n";
  std::cout << "latency ms: min " << out.stats.latency.min_seconds * 1e3
            << ", mean " << out.stats.latency.mean_seconds * 1e3 << ", max "
            << out.stats.latency.max_seconds * 1e3 << "\n";

  std::cout << "\nfirst kNN query results (global ids):\n";
  for (const auto& hit : out.results[0]) {
    std::cout << "  point " << hit.id << " at distance " << hit.distance
              << "\n";
  }
  std::cout << "first range query: " << out.results[1].size()
            << " points within radius 0.1\n";

  // 4. Verify against the exact single-index answer.
  distperm::index::LinearScanIndex<Vector> scan(data, l2);
  std::vector<std::vector<distperm::index::SearchResult>> truth;
  for (const auto& request : batch) {
    truth.push_back(request.mode == distperm::engine::QueryType::kKnn
                        ? scan.KnnQuery(request.point, request.k)
                        : scan.RangeQuery(request.point, request.radius));
  }
  double recall = distperm::engine::AverageRecall(out.results, truth);
  std::cout << "\nrecall vs exact linear scan: " << recall
            << (out.results == truth ? " (results identical)" : "") << "\n";
  return 0;
}
