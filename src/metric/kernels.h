// Vectorizable distance kernels over raw contiguous rows.
//
// These are the hot inner loops of every Section 5 experiment: one
// query vector against one row, or one query against a whole block of
// rows packed contiguously (see dataset::FlatVectorStore).  The kernels
// take plain `const double* __restrict` pointers and accumulate into
// four independent partial sums so the compiler can auto-vectorize
// under the default (non--ffast-math) floating-point rules; the scalar
// entry points in lp.h/cosine.h delegate here, so every code path in
// the library computes bit-identical distances.
//
// Summation order: lanes i, i+1, i+2, i+3 accumulate independently and
// combine as (acc0 + acc1) + (acc2 + acc3), then any tail (dim % 4)
// adds sequentially.  This translation unit is additionally compiled
// for the host CPU (see DISTPERM_KERNEL_NATIVE in CMakeLists.txt), so
// the compiler may contract mul + add into FMA.  Together these
// perturb a sum by at most a few ULP versus the naive sequential loop
// (tests/kernels_test.cc pins the tolerance) and can never cause
// divergence between code paths, because there is exactly one compiled
// definition of each kernel and every distance evaluation in the
// library calls it.  L-infinity and the block-min helper perform no
// additions and match the sequential reference exactly.

#ifndef DISTPERM_METRIC_KERNELS_H_
#define DISTPERM_METRIC_KERNELS_H_

#include <cstddef>

namespace distperm {
namespace metric {

// ------------------------------------------------------------- one pair

/// Sum of |a_i - b_i| over `dim` entries.
double L1Raw(const double* a, const double* b, size_t dim);

/// Sum of (a_i - b_i)^2 over `dim` entries (no sqrt).
double L2sqRaw(const double* a, const double* b, size_t dim);

/// Max of |a_i - b_i| over `dim` entries.  Bit-identical to the
/// sequential loop for any lane count (max is associative).
double LInfRaw(const double* a, const double* b, size_t dim);

/// Dot product of a and b over `dim` entries.
double DotRaw(const double* a, const double* b, size_t dim);

// -------------------------------------------- one query vs a row block

// Block kernels evaluate one query against `row_count` rows stored
// contiguously at a fixed `stride` (in doubles, >= dim; the padding
// lanes are never read).  out[r] receives the kernel value for row r.
// Each row's result is bit-identical to the corresponding *Raw call.

void L1Block(const double* query, const double* rows, size_t row_count,
             size_t stride, size_t dim, double* out);

void L2sqBlock(const double* query, const double* rows, size_t row_count,
               size_t stride, size_t dim, double* out);

void LInfBlock(const double* query, const double* rows, size_t row_count,
               size_t stride, size_t dim, double* out);

void DotBlock(const double* query, const double* rows, size_t row_count,
              size_t stride, size_t dim, double* out);

/// Minimum of x[0..n): one vectorized pass used to discard whole score
/// blocks whose best candidate cannot beat the current kNN radius.
/// Comparison-based (like the Linf kernel), exact for any lane count.
double MinRaw(const double* x, size_t n);

}  // namespace metric
}  // namespace distperm

#endif  // DISTPERM_METRIC_KERNELS_H_
