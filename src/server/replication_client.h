// Self-healing replication tail: the replica side of the protocol.
//
// One background thread drives the whole life cycle against a primary
// SearchServer:
//
//   connect ─► handshake (identity + resume position)
//      │            │
//      │            ├─ kStreamWal ──────► subscribe, apply frames
//      │            └─ kFetchSnapshot ─► pull chunks (resumable),
//      │                                 ResetToGeneration, subscribe
//      └◄── any failure: backoff (exponential + jitter) and retry
//
// The resume position is derived, not stored: the replica's WAL
// mirrors the primary's records 1:1 per generation, so the first
// record it still needs is always its own delta_entries() + 1.  A
// SIGKILL'd and restarted replica recovers its store from disk and
// resumes from exactly the right sequence with no progress file.
//
// Disconnection is graceful degradation, not failure: the store keeps
// serving its last applied state while the thread retries, and the
// staleness is visible in replica_lag_seconds / replica_applied_seq /
// replica_reconnects_total.
//
// Liveness: the socket carries recv/send deadlines (Client::Options),
// so a dead primary can't wedge the thread — an idle deadline sends a
// keepalive ping, and a second silent interval tears the connection
// down for a reconnect.

#ifndef DISTPERM_SERVER_REPLICATION_CLIENT_H_
#define DISTPERM_SERVER_REPLICATION_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <utility>

#include "engine/generation_store.h"
#include "engine/live_database.h"
#include "net/client.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "storage/crc32.h"
#include "storage/env.h"
#include "storage/point_codec.h"
#include "util/status.h"

namespace distperm {
namespace server {

/// Counters a snapshot transfer records into; null members are skipped.
struct SnapshotTransferCounters {
  obs::Counter* chunks = nullptr;
  obs::Counter* bytes = nullptr;
  obs::Counter* resumes = nullptr;
};

template <typename P>
class ReplicationClient {
 public:
  struct Options {
    std::string primary_host = "127.0.0.1";
    uint16_t primary_port = 0;
    /// Socket deadlines (see net::Client::Options).  The idle timeout
    /// doubles as the keepalive cadence: a recv deadline with no frame
    /// sends a ping; two silent intervals force a reconnect.
    int connect_timeout_ms = 2000;
    int idle_timeout_ms = 1000;
    /// Reconnect backoff: initial, doubling per failure, capped, with
    /// up to 50% deterministic jitter on top (seeded — tests stay
    /// reproducible).
    int backoff_initial_ms = 50;
    int backoff_max_ms = 2000;
    uint64_t jitter_seed = 1;
    obs::MetricsRegistry* metrics = nullptr;
  };

  ReplicationClient(engine::LiveDatabase<P>* db, const Options& options)
      : db_(db), options_(options), jitter_rng_(options.jitter_seed) {
    DP_CHECK(db_ != nullptr && db_->durable());
    last_contact_ms_.store(NowMs(), std::memory_order_relaxed);
    applied_seq_.store(db_->delta_entries(), std::memory_order_relaxed);
    if (options_.metrics != nullptr) {
      obs_reconnects_ =
          options_.metrics->GetCounter("replica_reconnects_total");
      obs_applied_ =
          options_.metrics->GetCounter("replica_applied_records_total");
      obs_rotations_ =
          options_.metrics->GetCounter("replica_rotations_total");
      transfer_counters_.chunks =
          options_.metrics->GetCounter("replica_snapshot_chunks_total");
      transfer_counters_.bytes =
          options_.metrics->GetCounter("replica_snapshot_bytes_total");
      transfer_counters_.resumes =
          options_.metrics->GetCounter("replica_snapshot_resumes_total");
      lag_gauge_handle_ = options_.metrics->RegisterCallback(
          "replica_lag_seconds", [this]() { return lag_seconds(); });
      seq_gauge_handle_ = options_.metrics->RegisterCallback(
          "replica_applied_seq", [this]() {
            return static_cast<double>(
                applied_seq_.load(std::memory_order_relaxed));
          });
      gauges_registered_ = true;
    }
  }

  ~ReplicationClient() {
    Stop();
    if (gauges_registered_) {
      options_.metrics->UnregisterCallback(lag_gauge_handle_);
      options_.metrics->UnregisterCallback(seq_gauge_handle_);
    }
  }
  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  void Start() {
    DP_CHECK(!thread_.joinable());
    thread_ = std::thread([this]() { Run(); });
  }

  /// Signals the thread and joins.  Bounded: every blocking socket
  /// operation carries a deadline and every backoff sleep polls stop_.
  void Stop() {
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable()) thread_.join();
  }

  /// One snapshot transfer, used standalone to bootstrap an empty
  /// replica directory before its store first opens: handshake as a
  /// stateless follower, pull the primary's current snapshot into
  /// `dir` (chunked, per-chunk CRC32C, resuming any `.partial` a
  /// previous attempt left), and publish it under its final name.  One
  /// attempt — the caller loops with backoff.
  static util::Status BootstrapSnapshot(storage::Env* env,
                                        const std::string& dir,
                                        const std::string& index_spec,
                                        uint64_t seed, uint64_t shard_count,
                                        const Options& options) {
    auto connected = ConnectPrimary(options);
    if (!connected.ok()) return connected.status();
    net::Client* client = connected.value().get();
    net::CatchUpRequest request;
    request.point_kind = storage::PointCodec<P>::kName;
    request.spec = index_spec;
    request.seed = seed;
    request.shard_count = shard_count;
    request.generation = 0;  // no local state
    request.next_seq = 1;
    auto response = Handshake(client, request);
    if (!response.ok()) return response.status();
    if (response.value().status.code != net::WireCode::kOk) {
      return WireToStatus(response.value().status);
    }
    if (response.value().action != net::CatchUpAction::kFetchSnapshot) {
      return util::Status::Internal(
          "replication: primary offered a WAL stream to a replica with "
          "no local state");
    }
    SnapshotTransferCounters counters;
    if (options.metrics != nullptr) {
      counters.chunks =
          options.metrics->GetCounter("replica_snapshot_chunks_total");
      counters.bytes =
          options.metrics->GetCounter("replica_snapshot_bytes_total");
      counters.resumes =
          options.metrics->GetCounter("replica_snapshot_resumes_total");
    }
    return FetchSnapshotInto(env, dir, client,
                             response.value().generation, counters);
  }

  // Introspection (tests and the serving layer's logs).
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  uint64_t applied_records() const {
    return applied_records_.load(std::memory_order_relaxed);
  }
  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_relaxed);
  }
  double lag_seconds() const {
    return static_cast<double>(
               NowMs() - last_contact_ms_.load(std::memory_order_relaxed)) /
           1000.0;
  }
  util::Status last_error() const {
    std::lock_guard<std::mutex> lock(last_error_mutex_);
    return last_error_;
  }

 private:
  static int64_t NowMs() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  static util::Result<std::unique_ptr<net::Client>> ConnectPrimary(
      const Options& options) {
    net::Client::Options socket_options;
    socket_options.connect_timeout_ms = options.connect_timeout_ms;
    socket_options.recv_timeout_ms = options.idle_timeout_ms;
    socket_options.send_timeout_ms = options.idle_timeout_ms;
    return net::Client::Connect(options.primary_host, options.primary_port,
                                socket_options);
  }

  static util::Result<net::CatchUpResponse> Handshake(
      net::Client* client, const net::CatchUpRequest& request) {
    std::string payload;
    net::EncodeCatchUpRequest(&payload, request);
    DP_RETURN_IF_ERROR(
        client->SendFrame(net::MessageType::kCatchUpHandshake, payload));
    auto frame = client->ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame.value().first != net::MessageType::kCatchUpHandshake) {
      return UnexpectedFrameError(frame.value().first);
    }
    const std::string& bytes = frame.value().second;
    return net::DecodeCatchUpResponse(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }

  /// Lifts a wire-level error back into a util::Status (the inverse of
  /// WireStatus::FromStatus, close enough for retry-loop plumbing).
  static util::Status WireToStatus(const net::WireStatus& wire) {
    const std::string message =
        std::string("replication: primary said: ") + wire.message;
    switch (wire.code) {
      case net::WireCode::kOk:
        return util::Status::OK();
      case net::WireCode::kInvalidArgument:
        return util::Status::InvalidArgument(message);
      case net::WireCode::kNotFound:
        return util::Status::NotFound(message);
      case net::WireCode::kIoError:
        return util::Status::IoError(message);
      default:
        return util::Status::Internal(message);
    }
  }

  static util::Status UnexpectedFrameError(net::MessageType type) {
    return util::Status::Internal(
        "replication: unexpected frame type " +
        std::to_string(static_cast<int>(type)) + " from primary");
  }

  /// The chunk pull loop: resume from any `.partial` left behind
  /// (every byte in it came from a CRC-verified chunk, and a torn
  /// append is still a correct prefix), verify each chunk's CRC and
  /// offset, then fsync + rename into the final snapshot name.
  static util::Status FetchSnapshotInto(
      storage::Env* env, const std::string& dir, net::Client* client,
      uint64_t generation, const SnapshotTransferCounters& counters) {
    const std::string final_path =
        dir + "/" + engine::SnapshotFileName(generation);
    const std::string partial_path = final_path + ".partial";
    DP_RETURN_IF_ERROR(env->CreateDir(dir));
    uint64_t offset = 0;
    {
      auto mapped = env->MapFile(partial_path);
      if (mapped.ok()) offset = mapped.value()->size();
    }
    if (offset > 0 && counters.resumes != nullptr) {
      counters.resumes->Increment();
    }
    auto file = env->NewWritableFile(partial_path, /*truncate=*/false);
    if (!file.ok()) return file.status();
    for (;;) {
      net::FetchSnapshotRequest request;
      request.generation = generation;
      request.offset = offset;
      std::string payload;
      net::EncodeFetchSnapshotRequest(&payload, request);
      DP_RETURN_IF_ERROR(
          client->SendFrame(net::MessageType::kFetchSnapshot, payload));
      auto frame = client->ReadFrame();
      if (!frame.ok()) return frame.status();
      if (frame.value().first != net::MessageType::kSnapshotChunk) {
        return UnexpectedFrameError(frame.value().first);
      }
      const std::string& bytes = frame.value().second;
      auto decoded = net::DecodeSnapshotChunk(
          reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
      if (!decoded.ok()) return decoded.status();
      net::SnapshotChunk& chunk = decoded.value();
      if (chunk.status.code != net::WireCode::kOk) {
        return WireToStatus(chunk.status);
      }
      if (chunk.generation != generation || chunk.offset != offset) {
        return util::Status::Internal(
            "replication: snapshot chunk out of order (asked offset " +
            std::to_string(offset) + ", got " +
            std::to_string(chunk.offset) + ")");
      }
      if (storage::Crc32c(chunk.data.data(), chunk.data.size()) !=
          chunk.crc) {
        return util::Status::IoError(
            "replication: snapshot chunk failed its CRC");
      }
      if (offset > chunk.total_bytes) {
        // A stale partial longer than the file it claims to prefix —
        // divergence; start the transfer over.
        file.value()->Close();
        env->DeleteFile(partial_path);
        return util::Status::IoError(
            "replication: partial snapshot longer than the primary's "
            "file; restarting the transfer");
      }
      DP_RETURN_IF_ERROR(
          file.value()->Append(chunk.data.data(), chunk.data.size()));
      offset += chunk.data.size();
      if (counters.chunks != nullptr) counters.chunks->Increment();
      if (counters.bytes != nullptr) counters.bytes->Add(chunk.data.size());
      if (chunk.last) break;
    }
    DP_RETURN_IF_ERROR(file.value()->Sync());
    DP_RETURN_IF_ERROR(file.value()->Close());
    DP_RETURN_IF_ERROR(env->RenameFile(partial_path, final_path));
    return env->SyncDir(dir);
  }

  void Run() {
    int64_t backoff_ms = options_.backoff_initial_ms;
    while (!stop_.load(std::memory_order_acquire)) {
      bool connected = false;
      util::Status status = RunOnce(&connected);
      if (stop_.load(std::memory_order_acquire)) break;
      {
        std::lock_guard<std::mutex> lock(last_error_mutex_);
        last_error_ = status;
      }
      if (connected) backoff_ms = options_.backoff_initial_ms;
      // Jittered sleep: up to +50% spreads a fleet of replicas
      // hammering a rebooted primary.
      const int64_t jitter =
          backoff_ms > 1
              ? static_cast<int64_t>(jitter_rng_() % (backoff_ms / 2 + 1))
              : 0;
      SleepMs(backoff_ms + jitter);
      backoff_ms = std::min<int64_t>(backoff_ms * 2, options_.backoff_max_ms);
    }
  }

  /// One connection's life: connect, handshake, resync if told to,
  /// subscribe, apply until something breaks.  `*connected` reports
  /// whether the handshake succeeded (resets the caller's backoff).
  util::Status RunOnce(bool* connected) {
    auto client = ConnectPrimary(options_);
    if (!client.ok()) return client.status();

    net::CatchUpRequest request;
    request.point_kind = storage::PointCodec<P>::kName;
    request.spec = db_->index_spec();
    request.seed = db_->seed();
    request.shard_count = db_->shard_count();
    request.generation = db_->generation_number();
    request.next_seq = db_->delta_entries() + 1;
    auto response = Handshake(client.value().get(), request);
    if (!response.ok()) return response.status();
    if (response.value().status.code != net::WireCode::kOk) {
      return WireToStatus(response.value().status);
    }
    *connected = true;
    reconnects_.fetch_add(1, std::memory_order_relaxed);
    if (obs_reconnects_ != nullptr) obs_reconnects_->Increment();
    Touch();

    if (response.value().action == net::CatchUpAction::kFetchSnapshot) {
      DP_RETURN_IF_ERROR(
          Resync(client.value().get(), response.value().generation));
    }

    net::StreamWalRequest subscribe;
    subscribe.generation = db_->generation_number();
    subscribe.next_seq = db_->delta_entries() + 1;
    std::string payload;
    net::EncodeStreamWalRequest(&payload, subscribe);
    DP_RETURN_IF_ERROR(client.value()->SendFrame(
        net::MessageType::kStreamWal, payload));

    int idle_strikes = 0;
    while (!stop_.load(std::memory_order_acquire)) {
      auto frame = client.value()->ReadFrame();
      if (!frame.ok()) {
        if (frame.status().code() == util::StatusCode::kDeadlineExceeded) {
          // Idle, not necessarily dead: probe once; a second silent
          // interval means the primary is gone.
          if (++idle_strikes >= 2) {
            return util::Status::IoError(
                "replication: primary silent past two idle intervals");
          }
          DP_RETURN_IF_ERROR(
              client.value()->SendFrame(net::MessageType::kPing, ""));
          continue;
        }
        return frame.status();
      }
      idle_strikes = 0;
      Touch();
      switch (frame.value().first) {
        case net::MessageType::kPong:
          continue;
        case net::MessageType::kWalFrame: {
          const std::string& bytes = frame.value().second;
          auto decoded = net::DecodeWalStreamFrame(
              reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
          if (!decoded.ok()) return decoded.status();
          DP_RETURN_IF_ERROR(Apply(decoded.value()));
          continue;
        }
        case net::MessageType::kError: {
          const std::string& bytes = frame.value().second;
          auto status = net::DecodeWireStatus(
              reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
          if (status.ok()) return WireToStatus(status.value());
          return util::Status::Internal(
              "replication: primary sent an undecodable error frame");
        }
        default:
          return UnexpectedFrameError(frame.value().first);
      }
    }
    return util::Status::OK();
  }

  /// Fetch-then-reset: pull snapshot-<generation> next to the live
  /// store, load it, and swap the whole serving state over to it.
  /// Handles both bootstrap-while-running and same-generation
  /// divergence (ResetToGeneration keeps the freshly renamed file).
  util::Status Resync(net::Client* client, uint64_t generation) {
    DP_RETURN_IF_ERROR(FetchSnapshotInto(db_->env(), db_->wal_dir(), client,
                                         generation, transfer_counters_));
    auto loaded = engine::ReadGenerationSnapshot<P>(
        db_->env(), db_->wal_dir() + "/" + engine::SnapshotFileName(generation),
        db_->metric(), db_->shard_count(), db_->index_spec(), db_->seed(),
        db_->build_threads());
    if (!loaded.ok()) return loaded.status();
    DP_RETURN_IF_ERROR(
        db_->ResetToGeneration(std::move(loaded).value()));
    applied_seq_.store(db_->delta_entries(), std::memory_order_relaxed);
    return util::Status::OK();
  }

  util::Status Apply(const net::WalStreamFrame& frame) {
    if (frame.kind == net::kWalFrameRotate) {
      DP_RETURN_IF_ERROR(db_->CompactPrefix(frame.folded));
      if (db_->generation_number() != frame.generation) {
        return util::Status::Internal(
            "replication: local fold landed on generation " +
            std::to_string(db_->generation_number()) +
            ", primary announced " + std::to_string(frame.generation));
      }
      applied_seq_.store(db_->delta_entries(), std::memory_order_relaxed);
      if (obs_rotations_ != nullptr) obs_rotations_->Increment();
      return util::Status::OK();
    }
    if (frame.generation != db_->generation_number() ||
        frame.seq != db_->delta_entries() + 1) {
      return util::Status::Internal(
          "replication: stream out of step (frame generation " +
          std::to_string(frame.generation) + " seq " +
          std::to_string(frame.seq) + ", local expects seq " +
          std::to_string(db_->delta_entries() + 1) + ")");
    }
    auto op = engine::DecodeWalRecord<P>(frame.record);
    if (!op.ok()) return op.status();
    // Prelogged apply: the local WAL reuses the primary's exact record
    // bytes (identical by the 1:1 mirror invariant) instead of
    // re-encoding the decoded point.
    DP_RETURN_IF_ERROR(
        db_->ApplyReplicated(std::move(op).value(), frame.record));
    applied_seq_.store(frame.seq, std::memory_order_relaxed);
    applied_records_.fetch_add(1, std::memory_order_relaxed);
    if (obs_applied_ != nullptr) obs_applied_->Increment();
    return util::Status::OK();
  }

  void Touch() {
    last_contact_ms_.store(NowMs(), std::memory_order_relaxed);
  }

  void SleepMs(int64_t ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (!stop_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  engine::LiveDatabase<P>* db_;
  Options options_;
  std::minstd_rand jitter_rng_;
  std::thread thread_;
  std::atomic<bool> stop_{false};

  std::atomic<int64_t> last_contact_ms_{0};
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> applied_records_{0};
  std::atomic<uint64_t> reconnects_{0};
  mutable std::mutex last_error_mutex_;
  util::Status last_error_;

  SnapshotTransferCounters transfer_counters_;
  obs::Counter* obs_reconnects_ = nullptr;
  obs::Counter* obs_applied_ = nullptr;
  obs::Counter* obs_rotations_ = nullptr;
  uint64_t lag_gauge_handle_ = 0;
  uint64_t seq_gauge_handle_ = 0;
  bool gauges_registered_ = false;
};

}  // namespace server
}  // namespace distperm

#endif  // DISTPERM_SERVER_REPLICATION_CLIENT_H_
