#include "core/perm_metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/perm_codec.h"
#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

Permutation Identity(size_t k) {
  Permutation p(k);
  std::iota(p.begin(), p.end(), 0);
  return p;
}

Permutation Reverse(size_t k) {
  Permutation p(k);
  for (size_t i = 0; i < k; ++i) p[i] = static_cast<uint8_t>(k - 1 - i);
  return p;
}

TEST(Footrule, ZeroIffEqual) {
  for (size_t k = 1; k <= 8; ++k) {
    EXPECT_EQ(SpearmanFootrule(Identity(k), Identity(k)), 0);
  }
  EXPECT_GT(SpearmanFootrule({1, 0, 2}, {0, 1, 2}), 0);
}

TEST(Footrule, KnownValues) {
  EXPECT_EQ(SpearmanFootrule({1, 0}, {0, 1}), 2);
  EXPECT_EQ(SpearmanFootrule({1, 0, 2}, {0, 1, 2}), 2);
  EXPECT_EQ(SpearmanFootrule({2, 1, 0}, {0, 1, 2}), 4);
}

TEST(Footrule, ReverseAttainsMaximum) {
  for (size_t k = 1; k <= 10; ++k) {
    EXPECT_EQ(SpearmanFootrule(Identity(k), Reverse(k)), MaxFootrule(k))
        << k;
  }
}

TEST(Footrule, MaxValues) {
  EXPECT_EQ(MaxFootrule(2), 2);
  EXPECT_EQ(MaxFootrule(3), 4);
  EXPECT_EQ(MaxFootrule(4), 8);
  EXPECT_EQ(MaxFootrule(5), 12);
}

TEST(KendallTau, KnownValues) {
  EXPECT_EQ(KendallTau({0, 1, 2}, {0, 1, 2}), 0);
  EXPECT_EQ(KendallTau({0, 1, 2}, {0, 2, 1}), 1);
  EXPECT_EQ(KendallTau({0, 1, 2}, {2, 1, 0}), 3);
}

TEST(KendallTau, ReverseAttainsMaximum) {
  for (size_t k = 2; k <= 10; ++k) {
    EXPECT_EQ(KendallTau(Identity(k), Reverse(k)), MaxKendallTau(k)) << k;
  }
}

TEST(SpearmanRho, KnownValues) {
  EXPECT_EQ(SpearmanRhoSquared({0, 1}, {0, 1}), 0);
  EXPECT_EQ(SpearmanRhoSquared({1, 0}, {0, 1}), 2);
  EXPECT_EQ(SpearmanRhoSquared({2, 1, 0}, {0, 1, 2}), 8);
}

class PermMetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PermMetricPropertyTest, SymmetryAndTriangle) {
  util::Rng rng(900 + GetParam());
  const size_t k = 2 + rng.NextBounded(8);
  std::vector<Permutation> perms;
  for (int i = 0; i < 8; ++i) {
    Permutation p = Identity(k);
    rng.Shuffle(&p);
    perms.push_back(p);
  }
  for (const auto& a : perms) {
    for (const auto& b : perms) {
      EXPECT_EQ(SpearmanFootrule(a, b), SpearmanFootrule(b, a));
      EXPECT_EQ(KendallTau(a, b), KendallTau(b, a));
      EXPECT_EQ(SpearmanRhoSquared(a, b), SpearmanRhoSquared(b, a));
      for (const auto& c : perms) {
        // Footrule and Kendall tau are metrics on permutations.
        EXPECT_LE(SpearmanFootrule(a, c),
                  SpearmanFootrule(a, b) + SpearmanFootrule(b, c));
        EXPECT_LE(KendallTau(a, c), KendallTau(a, b) + KendallTau(b, c));
      }
    }
  }
}

TEST_P(PermMetricPropertyTest, DiaconisGrahamInequalities) {
  // Diaconis-Graham: tau <= footrule <= 2 * tau.
  util::Rng rng(950 + GetParam());
  const size_t k = 2 + rng.NextBounded(10);
  for (int t = 0; t < 30; ++t) {
    Permutation a = Identity(k), b = Identity(k);
    rng.Shuffle(&a);
    rng.Shuffle(&b);
    int tau = KendallTau(a, b);
    int footrule = SpearmanFootrule(a, b);
    EXPECT_LE(tau, footrule);
    EXPECT_LE(footrule, 2 * tau);
  }
}

TEST_P(PermMetricPropertyTest, BoundsRespected) {
  util::Rng rng(980 + GetParam());
  const size_t k = 2 + rng.NextBounded(10);
  for (int t = 0; t < 30; ++t) {
    Permutation a = Identity(k), b = Identity(k);
    rng.Shuffle(&a);
    rng.Shuffle(&b);
    EXPECT_LE(SpearmanFootrule(a, b), MaxFootrule(k));
    EXPECT_LE(KendallTau(a, b), MaxKendallTau(k));
    EXPECT_GE(SpearmanFootrule(a, b), 0);
    EXPECT_GE(KendallTau(a, b), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermMetricPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace core
}  // namespace distperm
