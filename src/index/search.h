// The unified query surface of the index layer.
//
// Every query against a SearchIndex is one typed SearchRequest: a mode
// (kNN, range, or kNN-within-radius), the query point, and optional
// execution knobs — a distance-computation budget and an approximate-
// candidate fraction.  Every answer is one SearchResponse: results in
// the canonical (distance, id) order, the call's QueryStats, a
// util::Status (invalid requests are rejected centrally instead of
// CHECK-failing inside an index), and a `truncated` flag that reports
// whether a budget stopped the search before it finished.
//
// Adding a query scenario therefore means adding a field here — not a
// new virtual pair on SearchIndex and a mirrored enum in the engine.
// The legacy RangeQuery/KnnQuery entry points survive as thin shims
// over Search() (see index.h).

#ifndef DISTPERM_INDEX_SEARCH_H_
#define DISTPERM_INDEX_SEARCH_H_

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "util/status.h"

namespace distperm {
namespace index {

/// One match: database position plus its distance to the query.
struct SearchResult {
  size_t id = 0;
  double distance = 0.0;

  friend bool operator==(const SearchResult& a, const SearchResult& b) {
    return a.id == b.id && a.distance == b.distance;
  }
};

/// Sorts results by (distance, id) — the canonical result order.
void SortResults(std::vector<SearchResult>* results);

/// Per-call accounting of the paper's cost model.  Each query call gets
/// its own accumulator, so concurrent callers never contend and a
/// caller's numbers cover exactly its own call.
struct QueryStats {
  uint64_t distance_computations = 0;
  /// Candidates a pruning filter discarded before the result stage:
  /// pivot lower-bound elimination (LAESA) and footrule cutoff
  /// (distperm) skip the metric evaluation itself; the flat scan's
  /// block-min score filter skips the emit work of scores already
  /// charged.  Indexes that prune whole subtrees without visiting them
  /// (vp/gh trees) report 0: counting those would require per-node
  /// subtree sizes the structures do not store.
  uint64_t pruning_eliminated = 0;
  /// Candidates verified by a true distance in an approximate index's
  /// verification stage (distperm's footrule ranking).  The verified
  /// fraction of a distperm query is candidates_verified / database
  /// size.  Exact indexes report 0.
  uint64_t candidates_verified = 0;

  void Merge(const QueryStats& other) {
    distance_computations += other.distance_computations;
    pruning_eliminated += other.pruning_eliminated;
    candidates_verified += other.candidates_verified;
  }
};

/// What a SearchRequest asks for.
enum class SearchMode : uint8_t {
  kKnn = 0,              ///< The k nearest points.
  kRange = 1,            ///< All points within `radius` (inclusive).
  kKnnWithinRadius = 2,  ///< The k nearest among points within `radius`.
};

/// Human-readable mode name ("knn", "range", "knn-within-radius").
const char* SearchModeName(SearchMode mode);

/// How the engine schedules one query's shard tasks.  Single-index
/// searches ignore the field; the engine applies it per request.
enum class ShardScheduling : uint8_t {
  /// Naive fan-out: every shard searches from scratch.  The engine's
  /// original behavior and the default.
  kIndependent = 0,
  /// Cooperative fan-out: all shard tasks start at once and share one
  /// lock-free upper bound on the query's k-th neighbour distance, so a
  /// shard can prune against the best radius any shard has seen so far.
  kCooperative = 1,
  /// Cooperative two-phase: one seed shard runs to completion first and
  /// publishes its k-th distance; the remaining shards then fan out
  /// against that already-tight bound.
  kSeedFirst = 2,
};

/// Human-readable policy name ("independent", "cooperative",
/// "seed-first").
const char* ShardSchedulingName(ShardScheduling policy);

/// Delta-merge hook for live stores (engine::LiveDatabase).  A live
/// query runs in two legs: the pinned generation's index search (whose
/// SearchContext prunes against the delta's k-th distance through
/// initial_radius_bound — any k delta hits upper-bound the merged k-th
/// distance, so the cap is exact) and a linear scan of the pinned delta
/// window.  This folds the two legs together: drops every base result
/// whose id the delta removed, appends the already-verified delta hits,
/// restores canonical (distance, id) order, and re-trims the kNN modes
/// to k.  `base` results keep generation ids; delta hits carry their
/// delta-assigned ids — disjoint by construction, so the merged order
/// is well defined.
void MergeDeltaResults(std::vector<SearchResult>* base,
                       const std::function<bool(size_t)>& is_removed,
                       std::vector<SearchResult> delta_hits,
                       SearchMode mode, size_t k);

/// Lock-free shared upper bound on a query's k-th neighbour distance,
/// padded to a cache line so per-query bounds in an engine batch never
/// false-share.  Shard tasks read it through SearchContext::Radius()
/// and tighten it as their collectors fill.  The invariant that makes
/// cooperative pruning exact: every published value is some shard's
/// current k-th-best distance, which can only overestimate the global
/// k-th distance — so pruning strictly beyond the bound can never
/// discard a true global neighbour.
struct alignas(64) SharedSearchBound {
  std::atomic<double> value{std::numeric_limits<double>::infinity()};
  /// Successful tightenings (CAS wins that lowered the bound) — the
  /// engine folds this into its cooperative-tightening counter after
  /// the batch barrier.  Both atomics share the bound's padded line,
  /// and tightenings are rare once the bound converges, so the counter
  /// adds no contention to the read-mostly fan-out.
  std::atomic<uint64_t> tightenings{0};

  double Load() const { return value.load(std::memory_order_relaxed); }

  /// Lowers the bound to `candidate` when that improves it (lock-free
  /// compare-exchange min; concurrent updaters never block).
  void UpdateMin(double candidate) {
    double current = value.load(std::memory_order_relaxed);
    while (candidate < current) {
      if (value.compare_exchange_weak(current, candidate,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        tightenings.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Re-arms the bound (engine-side, before a batch's tasks start).
  void Reset(double v = std::numeric_limits<double>::infinity()) {
    value.store(v, std::memory_order_relaxed);
    tightenings.store(0, std::memory_order_relaxed);
  }
};

/// One query: a mode, a point, and the mode's parameters, plus optional
/// execution knobs.  Construct with the factories (Knn, Range,
/// KnnWithinRadius) and chain the With* setters for the knobs:
///
///   index.Search(SearchRequest<Vector>::Knn(q, 10)
///                    .WithDistanceBudget(500));
///
/// The engine's QuerySpec<P> is an alias of this type, so one request
/// object describes a query identically everywhere.
template <typename P>
struct SearchRequest {
  SearchMode mode = SearchMode::kKnn;
  P point{};
  /// Number of neighbours (kKnn / kKnnWithinRadius modes; must be >= 1).
  size_t k = 0;
  /// Query radius, inclusive (kRange / kKnnWithinRadius; must be >= 0).
  double radius = 0.0;
  /// Distance-computation budget: when non-zero, the index stops
  /// searching once this many metric evaluations have been charged and
  /// the response reports truncated = true.  Results found so far are
  /// returned; they may be incomplete (and for kNN not yet the true
  /// neighbours).  0 means unlimited — the exact search, with cost
  /// accounting identical to a request without the field.
  uint64_t max_distance_computations = 0;
  /// For approximate indexes (distperm): fraction of the database to
  /// verify on this call, overriding the index's configured default.
  /// 0 means "use the index default"; exact indexes ignore the knob.
  double approx_candidate_fraction = 0.0;
  /// Upper bound on the k-th neighbour distance, known before the
  /// search starts (e.g. from a replica, a cache, or an earlier probe).
  /// kNN-mode searches prune against it from the first candidate on.
  /// Exactness contract: results stay bit-identical to an unhinted
  /// search as long as the bound really is >= the true k-th distance; a
  /// tighter (invalid) bound turns the search approximate.  Must be
  /// >= 0 and not NaN; +infinity (the default) is a no-op.  Range-mode
  /// searches ignore the field (their radius already bounds them).
  double initial_radius_bound = std::numeric_limits<double>::infinity();
  /// Engine scheduling policy for this query's shard fan-out (see
  /// ShardScheduling).  Ignored outside QueryEngine::RunBatch; range
  /// queries always run independently (every shard must report all of
  /// its in-range points, so there is nothing to share).
  ShardScheduling shard_scheduling = ShardScheduling::kIndependent;
  /// When true, the engine splits max_distance_computations across the
  /// shards (ceil-divide, remainder to the first shards) so the query's
  /// total cost is bounded by the budget itself.  When false (default),
  /// every shard task receives the full budget — the engine's original
  /// behavior, bounded by shards x budget.  No effect without a budget.
  bool split_distance_budget = false;
  /// When true, QueryEngine::RunBatch attaches an obs::SearchTrace to
  /// this query's BatchOutput slot: one span per shard task (plus the
  /// delta leg on the live path) with timing, distance counts, and the
  /// cooperative bound on entry/exit.  Observation only — results and
  /// distance accounting are bit-identical with tracing on.  Ignored
  /// by single-index Search().
  bool collect_trace = false;
  /// Engine-internal hook: when non-null, the search reads this shared
  /// bound as an extra radius cap and publishes its collector's k-th
  /// distance into it.  QueryEngine::RunBatch installs one per
  /// cooperative query; callers never set it directly (the pointee must
  /// outlive the search).
  SharedSearchBound* shared_bound = nullptr;

  static SearchRequest Knn(P point, size_t k) {
    SearchRequest request;
    request.mode = SearchMode::kKnn;
    request.point = std::move(point);
    request.k = k;
    return request;
  }

  static SearchRequest Range(P point, double radius) {
    SearchRequest request;
    request.mode = SearchMode::kRange;
    request.point = std::move(point);
    request.radius = radius;
    return request;
  }

  static SearchRequest KnnWithinRadius(P point, size_t k, double radius) {
    SearchRequest request;
    request.mode = SearchMode::kKnnWithinRadius;
    request.point = std::move(point);
    request.k = k;
    request.radius = radius;
    return request;
  }

  SearchRequest& WithDistanceBudget(uint64_t budget) {
    max_distance_computations = budget;
    return *this;
  }

  SearchRequest& WithCandidateFraction(double fraction) {
    approx_candidate_fraction = fraction;
    return *this;
  }

  SearchRequest& WithInitialRadiusBound(double bound) {
    initial_radius_bound = bound;
    return *this;
  }

  SearchRequest& WithShardScheduling(ShardScheduling policy) {
    shard_scheduling = policy;
    return *this;
  }

  SearchRequest& WithSplitDistanceBudget(bool split = true) {
    split_distance_budget = split;
    return *this;
  }

  SearchRequest& WithTrace(bool trace = true) {
    collect_trace = trace;
    return *this;
  }
};

/// The answer to one SearchRequest.  `results` is empty and `stats` is
/// zero whenever `status` is not OK (invalid requests are rejected
/// before any metric evaluation).
struct SearchResponse {
  std::vector<SearchResult> results;
  QueryStats stats;
  util::Status status;
  /// True iff a distance budget stopped the search before it finished
  /// (the result set may be incomplete); always false for unbudgeted
  /// requests.
  bool truncated = false;
};

namespace internal {

/// NaN detection for query points.  The generic form accepts every
/// point type; the overloads cover the coordinate-bearing ones.
template <typename P>
inline bool HasNanCoordinate(const P&) {
  return false;
}
inline bool HasNanCoordinate(const std::vector<double>& point) {
  for (double coordinate : point) {
    if (std::isnan(coordinate)) return true;
  }
  return false;
}
inline bool HasNanCoordinate(
    const std::vector<std::pair<uint32_t, double>>& point) {
  for (const auto& [dimension, value] : point) {
    if (std::isnan(value)) return true;
  }
  return false;
}

}  // namespace internal

/// Central request validation, shared by SearchIndex::Search and the
/// engine's RunBatch: k = 0 in a kNN mode, a negative or NaN radius, a
/// NaN query coordinate, or an out-of-range candidate fraction all
/// yield InvalidArgument here instead of undefined behavior (or a
/// CHECK-death) inside an index implementation.
template <typename P>
util::Status ValidateRequest(const SearchRequest<P>& request) {
  const bool wants_knn = request.mode != SearchMode::kRange;
  const bool wants_radius = request.mode != SearchMode::kKnn;
  if (wants_knn && request.k == 0) {
    return util::Status::InvalidArgument(
        "SearchRequest: k must be >= 1 for kNN modes");
  }
  if (wants_radius) {
    if (std::isnan(request.radius)) {
      return util::Status::InvalidArgument("SearchRequest: radius is NaN");
    }
    if (request.radius < 0.0) {
      return util::Status::InvalidArgument(
          "SearchRequest: radius must be >= 0");
    }
  }
  if (std::isnan(request.approx_candidate_fraction) ||
      request.approx_candidate_fraction < 0.0 ||
      request.approx_candidate_fraction > 1.0) {
    return util::Status::InvalidArgument(
        "SearchRequest: approx_candidate_fraction must be in [0, 1]");
  }
  if (std::isnan(request.initial_radius_bound) ||
      request.initial_radius_bound < 0.0) {
    return util::Status::InvalidArgument(
        "SearchRequest: initial_radius_bound must be >= 0 and not NaN");
  }
  if (internal::HasNanCoordinate(request.point)) {
    return util::Status::InvalidArgument(
        "SearchRequest: query point has a NaN coordinate");
  }
  return util::Status::OK();
}

/// Keeps the k best (smallest-distance) results seen so far; ties broken
/// toward lower ids.  Used by the kNN search loops.  Reusable: Reset()
/// re-arms a collector without releasing its heap storage, so the
/// per-thread pooled instance (index::QueryScratch) serves a whole
/// batch allocation-free after warm-up.
class KnnCollector {
 public:
  explicit KnnCollector(size_t k) : k_(k) {}

  /// Re-arms the collector for a new query: drops all kept results
  /// (capacity is retained) and sets the new k.
  void Reset(size_t k) {
    k_ = k;
    heap_.clear();
  }

  /// Pre-allocates heap storage for up to `k` kept results.
  void Reserve(size_t k) { heap_.reserve(k); }

  /// Offers a candidate.
  void Offer(size_t id, double distance);

  /// Current pruning radius: distance of the worst kept result, or
  /// +infinity while fewer than k results are kept (-infinity when
  /// k = 0: nothing can ever be kept).
  double Radius() const;

  /// True iff a candidate at `distance` could still enter the result.
  bool Admits(double distance) const { return distance <= Radius(); }

  /// Extracts the results, sorted by (distance, id).
  std::vector<SearchResult> Take();

  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

 private:
  // Max-heap by (distance, id) so the worst kept result is on top.
  struct Entry {
    double distance;
    size_t id;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.distance != b.distance) return a.distance < b.distance;
      return a.id < b.id;
    }
  };
  size_t k_;
  std::vector<Entry> heap_;
};

/// Per-call execution state handed to SearchImpl: result collection,
/// the mode-aware pruning radius, and budget tracking.  Implementations
/// drive their search loop with Emit/Radius/StopAfterBudget and never
/// branch on the mode themselves, so one loop serves every mode.
///
/// The pruning radius additionally caps itself at the request's
/// initial_radius_bound and (when the engine installed one) the live
/// SharedSearchBound, so every index's pruning — block-min score
/// filtering, ball pruning, lower-bound elimination — starts from the
/// best k-th distance seen anywhere and keeps tightening against it.
/// Both caps apply only to the kNN modes: a range search must report
/// every in-range point regardless of what other shards found.
class SearchContext {
 public:
  /// `collector` must be non-null for the kNN modes (it is pooled from
  /// QueryScratch by SearchIndex::Search) and is unused for kRange.
  /// `initial_bound` and `shared` come from the request (defaults: no
  /// cap, no shared bound).
  SearchContext(SearchMode mode, double radius, uint64_t budget,
                QueryStats* stats, KnnCollector* collector,
                double initial_bound =
                    std::numeric_limits<double>::infinity(),
                SharedSearchBound* shared = nullptr)
      : mode_(mode),
        radius_(radius),
        budget_(budget),
        initial_bound_(initial_bound),
        shared_(shared),
        stats_(stats),
        collector_(collector) {}

  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  /// Where implementations charge their metric evaluations.
  QueryStats* stats() const { return stats_; }

  /// Offers a verified (id, true distance) pair to the result set.  In
  /// the kNN modes a full collector's k-th distance is published into
  /// the shared bound (when one is installed) so concurrent shard tasks
  /// inherit the tightest radius seen anywhere.
  void Emit(size_t id, double distance) {
    switch (mode_) {
      case SearchMode::kRange:
        if (distance <= radius_) range_results_.push_back({id, distance});
        break;
      case SearchMode::kKnn:
        collector_->Offer(id, distance);
        PublishBound();
        break;
      case SearchMode::kKnnWithinRadius:
        if (distance <= radius_) {
          collector_->Offer(id, distance);
          PublishBound();
        }
        break;
    }
  }

  /// Current pruning radius: any point farther than this cannot enter
  /// the result set.  Fixed for kRange; shrinks as the collector fills
  /// for the kNN modes, where it is additionally capped by the
  /// request's initial bound and the live shared bound.
  double Radius() const {
    switch (mode_) {
      case SearchMode::kRange:
        return radius_;
      case SearchMode::kKnn:
        return CappedKnnRadius(collector_->Radius());
      case SearchMode::kKnnWithinRadius:
        return CappedKnnRadius(std::min(radius_, collector_->Radius()));
    }
    return radius_;  // unreachable; placates -Wreturn-type
  }

  /// True once the request's distance budget is spent, in which case
  /// the search is marked truncated and the implementation must stop.
  /// Always false (and free of side effects) for unbudgeted requests,
  /// so exact-path cost accounting is untouched.
  bool StopAfterBudget() {
    if (budget_ == 0 || stats_->distance_computations < budget_) {
      return false;
    }
    truncated_ = true;
    return true;
  }

  bool truncated() const { return truncated_; }

  /// Metric evaluations left under the budget (saturating at 0);
  /// effectively unlimited for unbudgeted requests.  Lets block-at-a-
  /// time implementations size their final block to the budget instead
  /// of overshooting by a block.
  uint64_t BudgetRemaining() const {
    if (budget_ == 0) return std::numeric_limits<uint64_t>::max();
    const uint64_t spent = stats_->distance_computations;
    return spent >= budget_ ? 0 : budget_ - spent;
  }

  /// Extracts the final result set in canonical (distance, id) order.
  std::vector<SearchResult> TakeResults();

 private:
  double CappedKnnRadius(double radius) const {
    if (radius > initial_bound_) radius = initial_bound_;
    if (shared_ != nullptr) {
      const double shared = shared_->Load();
      if (shared < radius) radius = shared;
    }
    return radius;
  }

  /// Publishes the collector's k-th distance once it holds k results —
  /// any shard's k-th-best can only overestimate the global k-th
  /// distance, so the shared minimum stays a valid pruning cap.
  void PublishBound() {
    if (shared_ == nullptr) return;
    if (collector_->size() < collector_->k()) return;
    shared_->UpdateMin(collector_->Radius());
  }

  const SearchMode mode_;
  const double radius_;
  const uint64_t budget_;
  const double initial_bound_;
  SharedSearchBound* const shared_;
  QueryStats* const stats_;
  KnnCollector* const collector_;
  std::vector<SearchResult> range_results_;
  bool truncated_ = false;
};

}  // namespace index
}  // namespace distperm

#endif  // DISTPERM_INDEX_SEARCH_H_
