#include "core/all_perms_construction.h"

#include <cmath>

#include "core/perm_codec.h"
#include "metric/lp.h"
#include "util/status.h"

namespace distperm {
namespace core {
namespace {

using metric::LpDistance;
using metric::Vector;

// Rank (0-based position) of the last site in the distance permutation of
// `point` with respect to `sites`.
size_t RankOfLastSite(const std::vector<Vector>& sites, double p,
                      const Vector& point) {
  std::vector<double> distances(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    distances[i] = LpDistance(sites[i], point, p);
  }
  Permutation perm = PermutationFromDistances(distances);
  for (size_t r = 0; r < perm.size(); ++r) {
    if (perm[r] == sites.size() - 1) return r;
  }
  DP_CHECK(false);
  return 0;
}

Permutation PermOf(const std::vector<Vector>& sites, double p,
                   const Vector& point) {
  std::vector<double> distances(sites.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    distances[i] = LpDistance(sites[i], point, p);
  }
  return PermutationFromDistances(distances);
}

// Finds z in [z_lo, z_hi] placing the last site at rank `target` in the
// distance permutation of (prefix..., z).  The rank is a nonincreasing
// step function of z (the new site's distance decreases strictly while
// the old order is preserved), so the z values achieving the target rank
// form an interval.  We locate both edges of that interval by bisection
// and return its midpoint: a witness sitting in the middle of its cell.
// (Returning the first z found can land exponentially close to a cell
// boundary, which collapses distance gaps at the next recursion level.)
double FindZForRank(const std::vector<Vector>& sites, double p,
                    const Vector& prefix, size_t target, double z_lo,
                    double z_hi) {
  Vector point = prefix;
  point.push_back(0.0);
  auto rank_at = [&](double z) {
    point.back() = z;
    return RankOfLastSite(sites, p, point);
  };
  DP_CHECK_MSG(rank_at(z_lo) == sites.size() - 1,
               "new site not farthest at z_lo");
  DP_CHECK_MSG(rank_at(z_hi) == 0, "new site not nearest at z_hi");
  constexpr int kIterations = 100;

  // Upper edge of {z : rank(z) > target}; equals z_lo when target is the
  // last rank (the region is empty).
  double lower_edge = z_lo;
  if (target < sites.size() - 1) {
    double lo = z_lo, hi = z_hi;  // rank(lo) > target, rank(hi) <= target
    for (int iter = 0; iter < kIterations; ++iter) {
      double mid = 0.5 * (lo + hi);
      (rank_at(mid) > target ? lo : hi) = mid;
    }
    lower_edge = hi;
  }
  // Lower edge of {z : rank(z) < target}; equals z_hi when target is 0.
  double upper_edge = z_hi;
  if (target > 0) {
    double lo = z_lo, hi = z_hi;  // rank(lo) >= target, rank(hi) < target
    for (int iter = 0; iter < kIterations; ++iter) {
      double mid = 0.5 * (lo + hi);
      (rank_at(mid) >= target ? lo : hi) = mid;
    }
    upper_edge = lo;
  }
  double z = 0.5 * (lower_edge + upper_edge);
  DP_CHECK_MSG(rank_at(z) == target,
               "bisection failed to hit target rank " << target);
  return z;
}

}  // namespace

AllPermsConstruction BuildAllPermsConstruction(size_t k, double p,
                                               double epsilon) {
  DP_CHECK_MSG(k >= 2 && k <= 9, "k must be in [2, 9]");
  DP_CHECK_MSG(p >= 1.0, "p must be >= 1");
  DP_CHECK_MSG(epsilon > 0.0 && epsilon < 0.5,
               "epsilon must be in (0, 1/2) per Note 1");

  if (k == 2) {
    AllPermsConstruction base;
    base.p = p;
    base.epsilon = epsilon;
    base.sites = {{-1.0}, {1.0}};
    // Lehmer rank 0 is permutation (0,1): site 0 nearer; rank 1 is (1,0).
    base.witnesses = {{-epsilon / 2.0}, {epsilon / 2.0}};
    return base;
  }

  AllPermsConstruction inner =
      BuildAllPermsConstruction(k - 1, p, epsilon / 4.0);

  AllPermsConstruction out;
  out.p = p;
  out.epsilon = epsilon;
  out.sites.reserve(k);
  for (const Vector& site : inner.sites) {
    Vector extended = site;
    extended.push_back(0.0);
    out.sites.push_back(std::move(extended));
  }
  Vector new_site(k - 1, 0.0);
  new_site.back() = 1.0 + epsilon / 4.0;
  out.sites.push_back(std::move(new_site));

  uint64_t total = 1;
  for (size_t i = 2; i <= k; ++i) total *= i;
  out.witnesses.resize(total);

  for (uint64_t rank = 0; rank < total; ++rank) {
    Permutation target = UnrankPermutation(rank, k);
    // pi' = target with the new site (index k-1) removed; the position it
    // was removed from is the rank the new site must take.
    Permutation reduced;
    size_t new_site_rank = 0;
    for (size_t r = 0; r < target.size(); ++r) {
      if (target[r] == k - 1) {
        new_site_rank = r;
      } else {
        reduced.push_back(target[r]);
      }
    }
    const Vector& witness_prefix =
        inner.witnesses[RankPermutation(reduced)];
    double z = FindZForRank(out.sites, p, witness_prefix, new_site_rank,
                            -epsilon / 2.0, 3.0 * epsilon / 4.0);
    Vector witness = witness_prefix;
    witness.push_back(z);
    DP_CHECK_MSG(PermOf(out.sites, p, witness) == target,
                 "witness does not realise its permutation");
    out.witnesses[rank] = std::move(witness);
  }
  return out;
}

size_t VerifyAllPermsConstruction(const AllPermsConstruction& c) {
  size_t wrong = 0;
  Vector origin(c.sites.empty() ? 0 : c.sites[0].size(), 0.0);
  for (uint64_t rank = 0; rank < c.witnesses.size(); ++rank) {
    const Vector& witness = c.witnesses[rank];
    Permutation expected =
        UnrankPermutation(rank, c.sites.size());
    if (PermOf(c.sites, c.p, witness) != expected) {
      ++wrong;
      continue;
    }
    // Side condition (2): within epsilon of the origin.
    if (LpDistance(witness, origin, c.p) >= c.epsilon) ++wrong;
    // Side condition (3): within epsilon of unit distance from each site.
    for (const Vector& site : c.sites) {
      if (std::fabs(1.0 - LpDistance(site, witness, c.p)) >= c.epsilon) {
        ++wrong;
        break;
      }
    }
  }
  return wrong;
}

}  // namespace core
}  // namespace distperm
