// Tests for Status/Result, bit packing, table printing, and flag parsing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/bitpack.h"
#include "util/flags.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace distperm {
namespace util {
namespace {

// ---------------------------------------------------------------- Status

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(Result, CarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(Result, CarriesStatus) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// --------------------------------------------------------------- Bitpack

TEST(Bitpack, RoundTripFixedWidths) {
  BitWriter writer;
  writer.Write(5, 3);
  writer.Write(0, 1);
  writer.Write(1023, 10);
  writer.Write(0xdeadbeef, 32);
  EXPECT_EQ(writer.bit_count(), 46u);
  auto bytes = writer.Finish();
  EXPECT_EQ(bytes.size(), 6u);  // ceil(46 / 8)

  BitReader reader(bytes);
  EXPECT_EQ(reader.Read(3), 5u);
  EXPECT_EQ(reader.Read(1), 0u);
  EXPECT_EQ(reader.Read(10), 1023u);
  EXPECT_EQ(reader.Read(32), 0xdeadbeefu);
  EXPECT_EQ(reader.position(), 46u);
}

TEST(Bitpack, ZeroWidthWritesNothing) {
  BitWriter writer;
  writer.Write(0, 0);
  EXPECT_EQ(writer.bit_count(), 0u);
  EXPECT_TRUE(writer.Finish().empty());
}

TEST(Bitpack, SixtyFourBitValues) {
  BitWriter writer;
  uint64_t value = ~uint64_t{0};
  writer.Write(value, 64);
  writer.Write(1, 1);
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  EXPECT_EQ(reader.Read(64), value);
  EXPECT_EQ(reader.Read(1), 1u);
}

TEST(Bitpack, ManyValuesRoundTrip) {
  BitWriter writer;
  std::vector<std::pair<uint64_t, int>> items;
  uint64_t state = 12345;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    int width = 1 + static_cast<int>(state % 24);
    uint64_t value = (state >> 8) & ((uint64_t{1} << width) - 1);
    items.emplace_back(value, width);
    writer.Write(value, width);
  }
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  for (const auto& [value, width] : items) {
    EXPECT_EQ(reader.Read(width), value);
  }
}

TEST(Bitpack, SeekJumpsToFixedWidthRecord) {
  BitWriter writer;
  const int width = 11;
  for (uint64_t i = 0; i < 100; ++i) {
    writer.Write(i * 17 % 2048, width);
  }
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  // Random access in arbitrary order, no sequential skipping.
  for (size_t i : {99u, 0u, 42u, 7u, 77u, 1u}) {
    reader.Seek(i * width);
    EXPECT_EQ(reader.Read(width), i * 17 % 2048) << i;
    EXPECT_EQ(reader.position(), i * width + width);
  }
}

TEST(Bitpack, SeekToEndThenReread) {
  BitWriter writer;
  writer.Write(0xabcd, 16);
  auto bytes = writer.Finish();
  BitReader reader(bytes);
  reader.Seek(bytes.size() * 8);  // end of buffer: legal seek target
  reader.Seek(0);
  EXPECT_EQ(reader.Read(16), 0xabcdu);
}

TEST(Bitpack, BitsFor) {
  EXPECT_EQ(BitsFor(0), 0);
  EXPECT_EQ(BitsFor(1), 0);
  EXPECT_EQ(BitsFor(2), 1);
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(4), 2);
  EXPECT_EQ(BitsFor(5), 3);
  EXPECT_EQ(BitsFor(1024), 10);
  EXPECT_EQ(BitsFor(1025), 11);
}

TEST(Bitpack, BitsForFactorial) {
  EXPECT_EQ(BitsForFactorial(0), 0);   // 0! = 1 value
  EXPECT_EQ(BitsForFactorial(1), 0);   // 1! = 1 value
  EXPECT_EQ(BitsForFactorial(2), 1);   // 2 permutations
  EXPECT_EQ(BitsForFactorial(3), 3);   // 6 -> 3 bits
  EXPECT_EQ(BitsForFactorial(4), 5);   // 24 -> 5 bits
  EXPECT_EQ(BitsForFactorial(12), 29); // 479001600 < 2^29
}

// ----------------------------------------------------------- TablePrinter

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table;
  table.SetHeader({"name", "count"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "1000"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TablePrinter, AddRowValuesFormats) {
  TablePrinter table;
  table.AddRowValues("x", 42, 2.5);
  std::string out = table.ToString();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("2.50"), std::string::npos);
}

TEST(TablePrinter, HandlesRaggedRows) {
  TablePrinter table;
  table.SetHeader({"a"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"x"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("3"), std::string::npos);
}

// ----------------------------------------------------------------- Flags

std::vector<const char*> Argv(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args);
  return argv;
}

TEST(Flags, ParsesEqualsForm) {
  auto argv = Argv({"--points=100", "--name=test"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().GetInt("points", 0), 100);
  EXPECT_EQ(flags.value().GetString("name", ""), "test");
}

TEST(Flags, ParsesSpaceForm) {
  auto argv = Argv({"--points", "250", "--verbose"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().GetInt("points", 0), 250);
  EXPECT_TRUE(flags.value().GetBool("verbose", false));
}

TEST(Flags, BooleanForms) {
  auto argv = Argv({"--a", "--b=true", "--c=1", "--d=false", "--e=0"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.ok());
  const Flags& f = flags.value();
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
  EXPECT_FALSE(f.GetBool("e", true));
  EXPECT_TRUE(f.GetBool("missing", true));
}

TEST(Flags, PositionalArguments) {
  auto argv = Argv({"one", "--k=3", "two"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().positional(),
            (std::vector<std::string>{"one", "two"}));
}

TEST(Flags, DoubleValues) {
  auto argv = Argv({"--scale=0.25"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags.value().GetDouble("scale", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(flags.value().GetDouble("missing", 1.5), 1.5);
}

TEST(Flags, DoubleDashEndsFlags) {
  auto argv = Argv({"--a=1", "--", "--not-a-flag"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().positional(),
            (std::vector<std::string>{"--not-a-flag"}));
}

TEST(Flags, MalformedFlagRejected) {
  auto argv = Argv({"--=x"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_FALSE(flags.ok());
}

TEST(Flags, HasAndNames) {
  auto argv = Argv({"--a=1", "--b"});
  auto flags = Flags::Parse(static_cast<int>(argv.size()), argv.data());
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags.value().Has("a"));
  EXPECT_TRUE(flags.value().Has("b"));
  EXPECT_FALSE(flags.value().Has("c"));
  EXPECT_EQ(flags.value().Names().size(), 2u);
}

}  // namespace
}  // namespace util
}  // namespace distperm
