// Small blocking client for the serving protocol.
//
// One connection, synchronous round trips.  SearchBatch() pipelines:
// it writes every request frame back to back and then reads the
// responses in order, so the server's frame loop batches the whole
// set into one QueryEngine::RunBatch — over loopback this keeps the
// remote path within a small constant of the in-process path (the
// bench gates the ratio).
//
// Used by tests, the bench's serving section, and
// examples/remote_search.cpp; a production client would speak the
// same frames asynchronously.

#ifndef DISTPERM_NET_CLIENT_H_
#define DISTPERM_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "index/search.h"
#include "net/protocol.h"
#include "util/status.h"

namespace distperm {
namespace net {

class Client {
 public:
  /// Socket deadlines.  A zero member means "no deadline" for that
  /// operation (the historical blocking behavior).
  struct Options {
    /// Cap on the TCP handshake (non-blocking connect + poll).  A peer
    /// that never answers its SYN can no longer wedge the caller.
    int connect_timeout_ms = 5000;
    /// SO_RCVTIMEO: a recv that sees no bytes for this long fails with
    /// kDeadlineExceeded (the connection stays usable — buffered
    /// partial frames are kept, so callers can ping and keep reading).
    int recv_timeout_ms = 0;
    /// SO_SNDTIMEO: a send stalled this long (peer not draining) fails
    /// with kDeadlineExceeded.
    int send_timeout_ms = 0;
  };

  /// Connects to host:port (numeric IPv4 or "localhost") with the
  /// default Options (5 s connect deadline, no I/O deadlines),
  /// TCP_NODELAY.
  static util::Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port) {
    return Connect(host, port, Options{});
  }
  static util::Result<std::unique_ptr<Client>> Connect(
      const std::string& host, uint16_t port, const Options& options);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  util::Status Ping();

  template <typename P>
  util::Result<WireSearchResponse> Search(
      const index::SearchRequest<P>& request, bool no_cache = false) {
    std::string payload;
    EncodeSearchRequest(&payload, request, no_cache);
    DP_RETURN_IF_ERROR(SendFrame(MessageType::kSearch, payload));
    return ReadSearchResponse();
  }

  /// Pipelined batch: all requests on the wire first, then all
  /// responses, in order.
  template <typename P>
  util::Result<std::vector<WireSearchResponse>> SearchBatch(
      const std::vector<index::SearchRequest<P>>& batch,
      bool no_cache = false) {
    std::string frames;
    for (const index::SearchRequest<P>& request : batch) {
      std::string payload;
      EncodeSearchRequest(&payload, request, no_cache);
      frames.append(EncodeFrame(MessageType::kSearch, payload));
    }
    DP_RETURN_IF_ERROR(SendRaw(frames));
    std::vector<WireSearchResponse> responses;
    responses.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      auto response = ReadSearchResponse();
      if (!response.ok()) return response.status();
      responses.push_back(std::move(response).value());
    }
    return responses;
  }

  template <typename P>
  util::Result<WireInsertResponse> Insert(const P& point) {
    std::string payload;
    EncodeInsertRequest(&payload, point);
    DP_RETURN_IF_ERROR(SendFrame(MessageType::kInsert, payload));
    auto frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame.value().first != MessageType::kInsertResult) {
      return UnexpectedFrame(frame.value());
    }
    const std::string& bytes = frame.value().second;
    return DecodeInsertResponse(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }

  util::Result<WireStatus> Remove(uint64_t id);

  /// Raw access for protocol robustness tests and pipelining.
  util::Status SendFrame(MessageType type, const std::string& payload);
  util::Status SendRaw(const std::string& bytes);
  /// Reads one frame (blocking).  An error here includes the peer
  /// hanging up — which is exactly what the teardown tests expect
  /// after feeding the server garbage.
  util::Result<std::pair<MessageType, std::string>> ReadFrame();

 private:
  explicit Client(int fd) : fd_(fd) {}

  util::Result<WireSearchResponse> ReadSearchResponse();
  /// A kError frame (or an unrelated type) surfaced as a Status.
  util::Status UnexpectedFrame(
      const std::pair<MessageType, std::string>& frame);

  int fd_;
  /// Receive buffer: frames are consumed by advancing `consumed_`
  /// rather than erasing the prefix, so draining a burst of small
  /// streamed frames costs O(bytes), not O(frames x buffered bytes).
  std::string buffer_;
  size_t consumed_ = 0;
};

}  // namespace net
}  // namespace distperm

#endif  // DISTPERM_NET_CLIENT_H_
