// The Theorem 6 construction: k sites in (k-1)-dimensional Lp space such
// that all k! distance permutations occur.
//
// The paper's proof is inductive: given k-1 sites in k-2 dimensions whose
// witnesses realise every permutation within an epsilon/4 ball of the
// origin, append a zero coordinate to every site, place the new site at
// (0, ..., 0, 1 + epsilon/4), and for each target permutation slide the
// witness's new coordinate z through [-epsilon/2, 3*epsilon/4]: the new
// site's distance falls monotonically through the (unchanged) order of
// the old distances, so every insertion rank is realised.  This module
// executes that proof numerically, returning explicit sites and one
// witness point per permutation.

#ifndef DISTPERM_CORE_ALL_PERMS_CONSTRUCTION_H_
#define DISTPERM_CORE_ALL_PERMS_CONSTRUCTION_H_

#include <cstdint>
#include <vector>

#include "core/distance_permutation.h"
#include "metric/metric.h"

namespace distperm {
namespace core {

/// Sites and per-permutation witness points realising all k!
/// permutations.  witnesses[r] realises the permutation with Lehmer rank
/// r (see perm_codec.h).
struct AllPermsConstruction {
  std::vector<metric::Vector> sites;      ///< k sites in k-1 dimensions
  std::vector<metric::Vector> witnesses;  ///< k! witnesses, Lehmer order
  double p = 2.0;                         ///< the Lp metric used
  double epsilon = 0.0;                   ///< the proof's epsilon
};

/// Builds the Theorem 6 configuration for `k` sites under the Lp metric
/// (`p` in [1, infinity]).  `epsilon` must be in (0, 1/2) per the proof's
/// Note 1.  Requires 2 <= k <= 9 (k! witnesses are materialised).
AllPermsConstruction BuildAllPermsConstruction(size_t k, double p,
                                               double epsilon = 0.4);

/// Verifies that each witness realises its permutation and that the
/// proof's side conditions hold: witnesses lie within epsilon of the
/// origin (2) and within epsilon of unit distance from every site (3).
/// Returns the number of witnesses whose permutation is wrong (0 on
/// success).
size_t VerifyAllPermsConstruction(const AllPermsConstruction& construction);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_ALL_PERMS_CONSTRUCTION_H_
