// Weighted tree metric spaces (Section 3 of the paper, Definition 2).
//
// A tree metric space is the vertex set of a tree with path-length
// distances; a weighted tree metric sums positive edge weights along the
// unique path.  WeightedTree supports O(log n) distance queries via
// binary-lifting LCA, plus whole-tree single-source distance sweeps used
// by the exact permutation counters.

#ifndef DISTPERM_METRIC_TREE_METRIC_H_
#define DISTPERM_METRIC_TREE_METRIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace distperm {
namespace metric {

/// A tree on vertices 0..n-1 with positive edge weights, frozen into a
/// metric space by Finalize().
class WeightedTree {
 public:
  /// Creates a tree with `vertex_count` isolated vertices.
  explicit WeightedTree(size_t vertex_count);

  /// Adds an undirected edge of weight `weight` (> 0).  Must be called
  /// before Finalize().
  util::Status AddEdge(size_t u, size_t v, double weight);

  /// Validates that the edges form a spanning tree and builds the LCA
  /// structures.  Distance queries are fatal before this succeeds.
  util::Status Finalize();

  /// True once Finalize() has succeeded.
  bool finalized() const { return finalized_; }

  /// Number of vertices.
  size_t size() const { return adjacency_.size(); }

  /// Path distance between two vertices.  Requires finalized().
  double Distance(size_t u, size_t v) const;

  /// Number of edges on the path between two vertices (unweighted hop
  /// count).  Requires finalized().
  size_t HopCount(size_t u, size_t v) const;

  /// Lowest common ancestor of u and v with respect to root 0.
  size_t Lca(size_t u, size_t v) const;

  /// Parent of v with respect to root 0 (the root is its own parent).
  size_t Parent(size_t v) const;

  /// Depth of v in edges below root 0.
  size_t Depth(size_t v) const;

  /// Distances from `source` to every vertex (single DFS, O(n)).
  std::vector<double> DistancesFrom(size_t source) const;

  /// The edges as (u, v, weight) triples, in insertion order.
  struct Edge {
    size_t u;
    size_t v;
    double weight;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// Neighbours of a vertex as (vertex, weight) pairs.
  const std::vector<std::pair<size_t, double>>& Neighbours(size_t v) const {
    return adjacency_[v];
  }

  /// Builds a path 0-1-2-...-(n-1) with unit weights.
  static WeightedTree MakePath(size_t n);

  /// Builds a star with center 0 and unit weights.
  static WeightedTree MakeStar(size_t n);

  /// Builds a complete binary tree with unit weights.
  static WeightedTree MakeCompleteBinary(size_t n);

  /// Builds a uniformly random labelled tree (random Prüfer sequence)
  /// with weights drawn uniformly from [min_weight, max_weight].
  static WeightedTree MakeRandom(size_t n, util::Rng* rng,
                                 double min_weight = 1.0,
                                 double max_weight = 1.0);

 private:
  void Dfs();

  std::vector<Edge> edges_;
  std::vector<std::vector<std::pair<size_t, double>>> adjacency_;
  bool finalized_ = false;

  // LCA structures, valid after Finalize(): parent table up_[j][v] is the
  // 2^j-th ancestor of v; depth in edges and weighted depth from root 0.
  std::vector<std::vector<uint32_t>> up_;
  std::vector<uint32_t> depth_;
  std::vector<double> weighted_depth_;
  int log_levels_ = 0;
};

/// Metric wrapper over vertex ids of a finalized WeightedTree.  Holds a
/// pointer; the tree must outlive the metric.
class TreeMetric {
 public:
  explicit TreeMetric(const WeightedTree* tree) : tree_(tree) {}
  double operator()(const size_t& u, const size_t& v) const {
    return tree_->Distance(u, v);
  }
  std::string name() const { return "tree"; }

 private:
  const WeightedTree* tree_;
};

}  // namespace metric
}  // namespace distperm

#endif  // DISTPERM_METRIC_TREE_METRIC_H_
