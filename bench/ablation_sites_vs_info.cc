// Ablation for the paper's Section 4 design observation: "once we have
// about twice as many sites as dimensions, there is little value in
// adding more sites; the distance permutation contains little more
// information."
//
// For fixed d, sweeps the number of sites k and reports the distinct
// permutation count, its theoretical maximum N_{d,2}(k), the Shannon
// entropy of the permutation distribution (bits of information a stored
// permutation actually carries), and the storage cost per point.  The
// entropy curve flattens near k ~ 2d while raw storage lg k! keeps
// rising — the quantitative form of the paper's advice.
//
// Usage: ablation_sites_vs_info [--points=50000] [--max-k=18] [--seed=4]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/distance_permutation.h"
#include "core/euclidean_count.h"
#include "core/perm_counter.h"
#include "core/perm_table.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "util/bitpack.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::core::Permutation;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 50000));
  const size_t max_k =
      static_cast<size_t>(flags.value().GetInt("max-k", 18));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 4));

  distperm::core::EuclideanCounter counter;
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());

  std::cout << "Ablation: number of sites k vs information carried "
               "(uniform data, L2)\n";
  std::cout << "points=" << points << "\n\n";

  for (int d : {2, 4}) {
    Rng rng(seed + static_cast<uint64_t>(d));
    auto data =
        distperm::dataset::UniformCube(points, static_cast<size_t>(d),
                                       &rng);
    auto sites = distperm::core::SelectRandomSites(
        data, max_k, &rng);

    std::cout << "d = " << d << " (2d = " << 2 * d << ")\n";
    TablePrinter table;
    table.SetHeader({"k", "distinct perms", "N_{d,2}(k)", "entropy bits",
                     "lg k! bits", "table bits/pt"});
    for (size_t k = 2; k <= max_k; k += (k < 8 ? 1 : 2)) {
      std::vector<Vector> prefix_sites(sites.begin(), sites.begin() + k);
      std::vector<Permutation> perms;
      perms.reserve(points);
      std::vector<double> distances(k);
      for (const auto& point : data) {
        for (size_t j = 0; j < k; ++j) {
          distances[j] = l2(prefix_sites[j], point);
        }
        perms.push_back(
            distperm::core::PermutationFromDistances(distances));
      }
      auto table_store = distperm::core::PermutationTable::Build(perms);
      double entropy = distperm::core::PermutationEntropyBits(perms);
      char entropy_s[32];
      std::snprintf(entropy_s, sizeof(entropy_s), "%.2f", entropy);
      table.AddRow(
          {std::to_string(k), std::to_string(table_store.distinct()),
           counter.Count(d, static_cast<int>(k)).ToString(), entropy_s,
           std::to_string(
               distperm::util::BitsForFactorial(static_cast<int>(k))),
           std::to_string(table_store.TotalBits() / points)});
    }
    table.Print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading guide: entropy gains per added site shrink "
               "sharply beyond k ~ 2d, while the raw permutation cost "
               "lg k! keeps growing — storing more sites buys little "
               "discrimination, exactly the paper's point about iAESA's "
               "limits.\n";
  return 0;
}
