// Parameterized metric-axiom property sweeps for the vector metrics:
// non-negativity, identity of indiscernibles, symmetry, and the triangle
// inequality, each over random point populations.  The axioms are what
// every theorem in the paper silently relies on.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "core/distance_permutation.h"
#include "metric/cosine.h"
#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace metric {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

class LpAxiomTest
    : public ::testing::TestWithParam<std::tuple<double, int, int>> {
 protected:
  std::vector<Vector> MakePoints(size_t count, size_t dim,
                                 util::Rng* rng) {
    std::vector<Vector> points(count, Vector(dim));
    for (auto& point : points) {
      for (auto& coord : point) coord = rng->NextDouble(-2.0, 2.0);
    }
    return points;
  }
};

TEST_P(LpAxiomTest, NonNegativityAndIdentity) {
  auto [p, dim, seed] = GetParam();
  util::Rng rng(31000 + seed * 17 + dim);
  auto points = MakePoints(12, static_cast<size_t>(dim), &rng);
  for (const auto& x : points) {
    EXPECT_DOUBLE_EQ(LpDistance(x, x, p), 0.0);
    for (const auto& y : points) {
      double d = LpDistance(x, y, p);
      EXPECT_GE(d, 0.0);
      if (x != y) {
        EXPECT_GT(d, 0.0);
      }
    }
  }
}

TEST_P(LpAxiomTest, Symmetry) {
  auto [p, dim, seed] = GetParam();
  util::Rng rng(32000 + seed * 17 + dim);
  auto points = MakePoints(12, static_cast<size_t>(dim), &rng);
  for (const auto& x : points) {
    for (const auto& y : points) {
      EXPECT_DOUBLE_EQ(LpDistance(x, y, p), LpDistance(y, x, p));
    }
  }
}

TEST_P(LpAxiomTest, TriangleInequality) {
  auto [p, dim, seed] = GetParam();
  util::Rng rng(33000 + seed * 17 + dim);
  auto points = MakePoints(10, static_cast<size_t>(dim), &rng);
  for (const auto& x : points) {
    for (const auto& y : points) {
      for (const auto& z : points) {
        EXPECT_LE(LpDistance(x, z, p),
                  LpDistance(x, y, p) + LpDistance(y, z, p) + 1e-9);
      }
    }
  }
}

TEST_P(LpAxiomTest, TranslationInvariance) {
  auto [p, dim, seed] = GetParam();
  util::Rng rng(34000 + seed * 17 + dim);
  auto points = MakePoints(8, static_cast<size_t>(dim), &rng);
  Vector shift(static_cast<size_t>(dim));
  for (auto& coord : shift) coord = rng.NextDouble(-1.0, 1.0);
  for (const auto& x : points) {
    for (const auto& y : points) {
      Vector xs = x, ys = y;
      for (int i = 0; i < dim; ++i) {
        xs[i] += shift[i];
        ys[i] += shift[i];
      }
      EXPECT_NEAR(LpDistance(x, y, p), LpDistance(xs, ys, p), 1e-9);
    }
  }
}

TEST_P(LpAxiomTest, AbsoluteHomogeneity) {
  auto [p, dim, seed] = GetParam();
  util::Rng rng(35000 + seed * 17 + dim);
  auto points = MakePoints(6, static_cast<size_t>(dim), &rng);
  const double scale = 2.5;
  for (const auto& x : points) {
    for (const auto& y : points) {
      Vector xs = x, ys = y;
      for (int i = 0; i < dim; ++i) {
        xs[i] *= scale;
        ys[i] *= scale;
      }
      EXPECT_NEAR(LpDistance(xs, ys, p), scale * LpDistance(x, y, p),
                  1e-9 * (1.0 + LpDistance(x, y, p)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LpAxiomTest,
    ::testing::Combine(::testing::Values(1.0, 1.5, 2.0, 3.0, 7.0, kInf),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(0, 1)));

// Distance permutations only depend on distance comparisons, so any
// monotone transform of the metric leaves every permutation unchanged —
// e.g. squared L2 versus L2.
TEST(MetricConsistency, SquaredL2GivesSamePermutations) {
  util::Rng rng(36000);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Vector> sites(6, Vector(3));
    for (auto& site : sites) {
      for (auto& coord : site) coord = rng.NextDouble();
    }
    Vector query(3);
    for (auto& coord : query) coord = rng.NextDouble();
    std::vector<double> plain(6), squared(6);
    for (size_t i = 0; i < 6; ++i) {
      plain[i] = L2Distance(sites[i], query);
      squared[i] = L2DistanceSquared(sites[i], query);
    }
    EXPECT_EQ(core::PermutationFromDistances(plain),
              core::PermutationFromDistances(squared));
  }
}

}  // namespace
}  // namespace metric
}  // namespace distperm
