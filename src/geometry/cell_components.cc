#include "geometry/cell_components.h"

#include <unordered_set>

#include "core/distance_permutation.h"
#include "core/perm_codec.h"
#include "metric/lp.h"
#include "util/status.h"

namespace distperm {
namespace geometry {
namespace {

// Union-find over grid point ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[a] = b;
  }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

ComponentAnalysis AnalyzeCellComponents2D(
    const std::vector<metric::Vector>& sites, double p, double lo,
    double hi, size_t resolution) {
  DP_CHECK(!sites.empty());
  DP_CHECK(sites[0].size() == 2);
  DP_CHECK(resolution >= 2 && hi > lo);

  const size_t n = resolution * resolution;
  std::vector<uint64_t> label(n);
  std::vector<double> distances(sites.size());
  const double step = (hi - lo) / static_cast<double>(resolution - 1);
  for (size_t row = 0; row < resolution; ++row) {
    for (size_t col = 0; col < resolution; ++col) {
      metric::Vector point = {lo + step * static_cast<double>(col),
                              lo + step * static_cast<double>(row)};
      for (size_t s = 0; s < sites.size(); ++s) {
        distances[s] = metric::LpDistance(sites[s], point, p);
      }
      label[row * resolution + col] = core::RankPermutation(
          core::PermutationFromDistances(distances));
    }
  }

  DisjointSets components(n);
  for (size_t row = 0; row < resolution; ++row) {
    for (size_t col = 0; col < resolution; ++col) {
      size_t id = row * resolution + col;
      if (col + 1 < resolution && label[id] == label[id + 1]) {
        components.Union(id, id + 1);
      }
      if (row + 1 < resolution && label[id] == label[id + resolution]) {
        components.Union(id, id + resolution);
      }
    }
  }

  ComponentAnalysis analysis;
  analysis.probes = n;
  std::unordered_set<uint64_t> perms(label.begin(), label.end());
  analysis.distinct_permutations = perms.size();
  std::unordered_set<size_t> roots;
  for (size_t i = 0; i < n; ++i) roots.insert(components.Find(i));
  analysis.connected_components = roots.size();
  return analysis;
}

}  // namespace geometry
}  // namespace distperm
