// Per-query search traces.
//
// A SearchRequest with WithTrace(true) makes QueryEngine::RunBatch
// attach one SearchTrace to the query's slot in BatchOutput: one span
// per shard task (plus, on the live path, one span for the delta-log
// scan), ordered by start time.  Spans carry exactly what is needed to
// explain a slow query shard by shard — where the time went, where the
// distance budget went, and how the cooperative bound looked when the
// task entered and left.
//
// Tracing is observation only: the engine reads clocks and the shared
// bound around the search but changes nothing inside it, so results
// and distance counts are bit-identical with tracing on.  The spans'
// distance counts partition the query's total exactly: summing
// Span::distance_computations reproduces the query's
// per_query_distance_computations (regression-tested in
// tests/engine_test.cc).

#ifndef DISTPERM_OBS_TRACE_H_
#define DISTPERM_OBS_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace distperm {
namespace obs {

/// One traced query: its spans in start-time order.  Empty for queries
/// that did not request tracing (and for rejected queries).
struct SearchTrace {
  /// One unit of work the engine ran for the query.
  struct Span {
    /// Shard index within the batch's database; 0 for the delta span
    /// (see `delta`).
    size_t shard = 0;
    /// True for the live path's delta-log scan leg.
    bool delta = false;
    /// Task start/stop, in seconds relative to the batch's reference
    /// clock (BatchOutput::batch_start; the live path rebases both
    /// legs onto its own call start).
    double start_seconds = 0.0;
    double stop_seconds = 0.0;
    /// Metric evaluations this span charged.  Summed over a query's
    /// spans this equals the query's total distance count exactly.
    uint64_t distance_computations = 0;
    /// The cooperative shared bound when the task started and when it
    /// finished (+infinity when no bound was installed or published).
    double bound_entry = std::numeric_limits<double>::infinity();
    double bound_exit = std::numeric_limits<double>::infinity();
  };

  std::vector<Span> spans;

  bool empty() const { return spans.empty(); }

  uint64_t total_distance_computations() const {
    uint64_t total = 0;
    for (const Span& span : spans) total += span.distance_computations;
    return total;
  }
};

}  // namespace obs
}  // namespace distperm

#endif  // DISTPERM_OBS_TRACE_H_
