// Asymptotic bounds for L1 and L-infinity spaces (paper Theorem 9).
//
// For p in {1, 2, infinity} bisectors are piecewise linear: each bisector
// is a subset of a union of boundedly many hyperplanes (2^(2d) for L1,
// 4d^2 for L-infinity, 1 for L2).  Cutting d-dimensional space with the
// C(k,2) bisectors of k sites therefore yields at most
// S_d(C(k,2) * h(d, p)) pieces, where S_d is Price's cake-cutting count
// and h is the hyperplanes-per-bisector bound.  All three bounds are
// O(k^(2d)) for constant d.

#ifndef DISTPERM_CORE_BOUNDS_H_
#define DISTPERM_CORE_BOUNDS_H_

#include <cstdint>

#include "util/big_uint.h"

namespace distperm {
namespace core {

/// Upper bound on the number of flat hyperplanes whose union contains a
/// single bisector in d-dimensional Lp space, per the Theorem 9 proof:
/// L1 -> 2^(2d); L2 -> 1; Linf -> 4d^2.  `p` must be 1, 2, or infinity.
util::BigUint HyperplanesPerBisector(int dimension, double p);

/// The Theorem 9 cell-count upper bound for k sites in d-dimensional Lp
/// space: S_d( C(k,2) * HyperplanesPerBisector(d, p) ).  Exact BigUint.
util::BigUint LpPermutationUpperBound(int dimension, double p, int sites);

/// Bits sufficient to store one distance permutation under the Theorem 9
/// bound: ceil(lg LpPermutationUpperBound).  This is Theta(d^2 + d lg k)
/// for L1 and Theta(d lg d + d lg k) for Linf — still Theta(d lg k) for
/// constant d, the paper's storage improvement over lg k! = Theta(k lg k).
int LpStorageBitBound(int dimension, double p, int sites);

/// Bits to store an unrestricted permutation of k sites: ceil(lg k!).
int UnrestrictedPermutationBits(int sites);

}  // namespace core
}  // namespace distperm

#endif  // DISTPERM_CORE_BOUNDS_H_
