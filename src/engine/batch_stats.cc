#include "engine/batch_stats.h"

#include <algorithm>
#include <unordered_set>

#include "util/status.h"

namespace distperm {
namespace engine {

namespace {

/// Quantile `q` of an ascending-sorted non-empty sample, interpolating
/// linearly between the order statistics at rank q * (n - 1).
double SortedQuantile(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  const double rank = q * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(rank);
  if (lo + 1 >= n) return sorted[n - 1];
  const double fraction = rank - static_cast<double>(lo);
  return sorted[lo] + fraction * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

LatencySummary SummarizeLatencies(std::vector<double> seconds) {
  LatencySummary summary;
  if (seconds.empty()) return summary;
  std::sort(seconds.begin(), seconds.end());
  summary.count = seconds.size();
  summary.min_seconds = seconds.front();
  summary.max_seconds = seconds.back();
  double total = 0.0;
  for (double s : seconds) total += s;
  summary.mean_seconds = total / static_cast<double>(seconds.size());
  summary.p99_seconds = SortedQuantile(seconds, 0.99);
  summary.p999_seconds = SortedQuantile(seconds, 0.999);
  return summary;
}

double AverageRecall(
    const std::vector<std::vector<index::SearchResult>>& actual,
    const std::vector<std::vector<index::SearchResult>>& truth) {
  DP_CHECK(actual.size() == truth.size());
  if (truth.empty()) return 1.0;
  double total = 0.0;
  for (size_t q = 0; q < truth.size(); ++q) {
    if (truth[q].empty()) {
      total += 1.0;
      continue;
    }
    std::unordered_set<size_t> found;
    found.reserve(actual[q].size());
    for (const auto& r : actual[q]) found.insert(r.id);
    size_t hits = 0;
    for (const auto& t : truth[q]) hits += found.count(t.id);
    total += static_cast<double>(hits) / static_cast<double>(truth[q].size());
  }
  return total / static_cast<double>(truth.size());
}

}  // namespace engine
}  // namespace distperm
