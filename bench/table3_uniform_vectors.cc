// Reproduces paper Table 3: mean and maximum number of distinct distance
// permutations for uniform random vectors in [0,1]^d under the L1, L2 and
// L-infinity metrics, for d = 1..10 and k = 4, 8, 12 sites, over repeated
// random site draws.
//
// The paper used n = 10^6 points and 100 runs; the defaults here are
// scaled down for wall-clock (the counts scale smoothly with n, and the
// mean/max structure is unchanged).  Restore paper scale with
//   table3_uniform_vectors --points=1000000 --runs=100
//
// Usage: table3_uniform_vectors [--points=50000] [--runs=5] [--seed=1]
//                               [--max-d=10]

#include <cstdio>
#include <iostream>
#include <limits>
#include <vector>

#include "core/perm_counter.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

namespace {

using distperm::core::CountForSitePrefixes;
using distperm::core::SelectRandomSites;
using distperm::dataset::UniformCube;
using distperm::metric::LpMetric;
using distperm::metric::Metric;
using distperm::metric::Vector;
using distperm::util::Rng;
using distperm::util::TablePrinter;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 50000));
  const int runs = static_cast<int>(flags.value().GetInt("runs", 5));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 1));
  const int max_d = static_cast<int>(flags.value().GetInt("max-d", 10));

  const std::vector<size_t> ks = {4, 8, 12};

  std::cout << "Table 3: distance permutations for uniform random "
               "vectors\n";
  std::cout << "points=" << points << " runs=" << runs
            << " (paper: 10^6 points, 100 runs)\n\n";

  TablePrinter table;
  table.SetHeader({"metric", "d", "mean k=4", "mean k=8", "mean k=12",
                   "max k=4", "max k=8", "max k=12"});

  struct MetricSpec {
    const char* label;
    double p;
  };
  const MetricSpec specs[] = {{"L1", 1.0}, {"L2", 2.0}, {"Linf", kInf}};

  Rng master(seed);
  for (const auto& spec : specs) {
    Metric<Vector> metric{LpMetric(spec.p)};
    for (int d = 1; d <= max_d; ++d) {
      double mean[3] = {0, 0, 0};
      size_t maxima[3] = {0, 0, 0};
      for (int run = 0; run < runs; ++run) {
        Rng rng = master.Split();
        auto data = UniformCube(points, static_cast<size_t>(d), &rng);
        auto sites = SelectRandomSites(data, ks.back(), &rng);
        auto results = CountForSitePrefixes(data, sites, metric, ks);
        for (size_t t = 0; t < ks.size(); ++t) {
          mean[t] += static_cast<double>(results[t].distinct_permutations);
          maxima[t] =
              std::max(maxima[t], results[t].distinct_permutations);
        }
      }
      std::vector<std::string> row = {spec.label, std::to_string(d)};
      for (size_t t = 0; t < 3; ++t) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", mean[t] / runs);
        row.push_back(buf);
      }
      for (size_t t = 0; t < 3; ++t) {
        row.push_back(std::to_string(maxima[t]));
      }
      table.AddRow(row);
      std::cerr << spec.label << " d=" << d << " done\n";
    }
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: counts rise with d and saturate at k! "
               "once d >= k-1 (24 at k=4); L1 >= L2 >= Linf is the "
               "paper's observed general trend.\n";
  return 0;
}
