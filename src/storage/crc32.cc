#include "storage/crc32.h"

#include <array>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#include <nmmintrin.h>
#define DISTPERM_CRC32_X86 1
#endif

namespace distperm {
namespace storage {

namespace {

constexpr uint32_t kPolynomial = 0x82f63b78u;  // CRC32C, reflected

/// Slicing-by-8 tables, built once at first use.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPolynomial : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t slice = 1; slice < 8; ++slice) {
        t[slice][i] =
            (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xff];
      }
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

uint32_t Crc32cTable(const uint8_t* p, size_t size, uint32_t crc) {
  const Tables& tables = GetTables();
  while (size >= 8) {
    // One 8-byte step: fold the running crc into the first four bytes,
    // then combine all eight through the slices.
    const uint32_t lo = (crc ^ (static_cast<uint32_t>(p[0]) |
                                static_cast<uint32_t>(p[1]) << 8 |
                                static_cast<uint32_t>(p[2]) << 16 |
                                static_cast<uint32_t>(p[3]) << 24));
    crc = tables.t[7][lo & 0xff] ^ tables.t[6][(lo >> 8) & 0xff] ^
          tables.t[5][(lo >> 16) & 0xff] ^ tables.t[4][lo >> 24] ^
          tables.t[3][p[4]] ^ tables.t[2][p[5]] ^ tables.t[1][p[6]] ^
          tables.t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ tables.t[0][(crc ^ *p++) & 0xff];
  }
  return crc;
}

#ifdef DISTPERM_CRC32_X86
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    const uint8_t* p, size_t size, uint32_t crc) {
  while (size >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc = static_cast<uint32_t>(_mm_crc32_u64(crc, chunk));
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool HardwareAvailable() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & bit_SSE4_2) != 0;
}
#endif

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint32_t crc = seed ^ 0xffffffffu;
#ifdef DISTPERM_CRC32_X86
  static const bool hardware = HardwareAvailable();
  if (hardware) return Crc32cHardware(p, size, crc) ^ 0xffffffffu;
#endif
  return Crc32cTable(p, size, crc) ^ 0xffffffffu;
}

}  // namespace storage
}  // namespace distperm
