#include "geometry/bisector.h"

#include "metric/lp.h"
#include "util/status.h"

namespace distperm {
namespace geometry {

int BisectorSide(const metric::Vector& x, const metric::Vector& y,
                 const metric::Vector& z, double p) {
  double dx = metric::LpDistance(x, z, p);
  double dy = metric::LpDistance(y, z, p);
  if (dx < dy) return -1;
  if (dx > dy) return 1;
  return 0;
}

std::vector<int> SignVector(const std::vector<metric::Vector>& sites,
                            const metric::Vector& z, double p) {
  std::vector<int> signs;
  signs.reserve(sites.size() * (sites.size() - 1) / 2);
  for (size_t i = 0; i < sites.size(); ++i) {
    for (size_t j = i + 1; j < sites.size(); ++j) {
      int side = BisectorSide(sites[i], sites[j], z, p);
      // Tie-break: equality counts as nearer the lower-indexed site.
      signs.push_back(side == 0 ? -1 : side);
    }
  }
  return signs;
}

std::vector<int> SignVectorFromPermutation(const core::Permutation& perm) {
  DP_CHECK(core::IsPermutation(perm));
  core::Permutation rank = core::InvertPermutation(perm);
  const size_t k = perm.size();
  std::vector<int> signs;
  signs.reserve(k * (k - 1) / 2);
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      signs.push_back(rank[i] < rank[j] ? -1 : 1);
    }
  }
  return signs;
}

}  // namespace geometry
}  // namespace distperm
