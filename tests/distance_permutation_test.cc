#include "core/distance_permutation.h"

#include <gtest/gtest.h>

#include "metric/lp.h"
#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

TEST(Permutation, IsPermutationValidates) {
  EXPECT_TRUE(IsPermutation({}));
  EXPECT_TRUE(IsPermutation({0}));
  EXPECT_TRUE(IsPermutation({1, 0, 2}));
  EXPECT_FALSE(IsPermutation({1, 1, 2}));   // duplicate
  EXPECT_FALSE(IsPermutation({0, 3}));      // out of range
}

TEST(PermutationFromDistances, SortsByDistance) {
  EXPECT_EQ(PermutationFromDistances({3.0, 1.0, 2.0}),
            (Permutation{1, 2, 0}));
  EXPECT_EQ(PermutationFromDistances({0.5}), (Permutation{0}));
  EXPECT_EQ(PermutationFromDistances({}), (Permutation{}));
}

TEST(PermutationFromDistances, TieBreaksTowardLowerIndex) {
  // The paper's rule: equal distances order by increasing site index.
  EXPECT_EQ(PermutationFromDistances({2.0, 2.0, 1.0}),
            (Permutation{2, 0, 1}));
  EXPECT_EQ(PermutationFromDistances({1.0, 1.0, 1.0, 1.0}),
            (Permutation{0, 1, 2, 3}));
  EXPECT_EQ(PermutationFromDistances({5.0, 1.0, 5.0, 1.0}),
            (Permutation{1, 3, 0, 2}));
}

TEST(InvertPermutation, RoundTrips) {
  Permutation perm = {2, 0, 3, 1};
  Permutation inverse = InvertPermutation(perm);
  EXPECT_EQ(inverse, (Permutation{1, 3, 0, 2}));
  EXPECT_EQ(InvertPermutation(inverse), perm);
}

TEST(InvertPermutation, IdentityIsSelfInverse) {
  Permutation identity = {0, 1, 2, 3, 4};
  EXPECT_EQ(InvertPermutation(identity), identity);
}

TEST(ComputeDistancePermutation, EuclideanPlaneExample) {
  metric::Metric<metric::Vector> l2(metric::LpMetric::L2());
  std::vector<metric::Vector> sites = {{0.0, 0.0}, {10.0, 0.0}, {5.0, 5.0}};
  metric::Vector near_first = {1.0, 0.0};
  EXPECT_EQ(ComputeDistancePermutation(sites, l2, near_first),
            (Permutation{0, 2, 1}));
  metric::Vector near_second = {9.0, 1.0};
  EXPECT_EQ(ComputeDistancePermutation(sites, l2, near_second),
            (Permutation{1, 2, 0}));
}

TEST(ComputeDistancePermutation, EquidistantUsesIndexOrder) {
  metric::Metric<metric::Vector> l2(metric::LpMetric::L2());
  std::vector<metric::Vector> sites = {{-1.0, 0.0}, {1.0, 0.0}};
  metric::Vector on_bisector = {0.0, 3.0};
  EXPECT_EQ(ComputeDistancePermutation(sites, l2, on_bisector),
            (Permutation{0, 1}));
}

TEST(PermutationPrefix, MatchesFullPermutationPrefix) {
  util::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = 2 + rng.NextBounded(10);
    std::vector<double> distances(k);
    for (auto& d : distances) d = rng.NextDouble();
    Permutation full = PermutationFromDistances(distances);
    for (size_t prefix = 0; prefix <= k; ++prefix) {
      Permutation partial =
          PermutationPrefixFromDistances(distances, prefix);
      ASSERT_EQ(partial.size(), prefix);
      for (size_t i = 0; i < prefix; ++i) {
        EXPECT_EQ(partial[i], full[i]);
      }
    }
  }
}

TEST(PermutationPrefix, PrefixLongerThanSitesClamps) {
  Permutation partial = PermutationPrefixFromDistances({1.0, 2.0}, 10);
  EXPECT_EQ(partial.size(), 2u);
}

TEST(ComputeDistancePermutation, AlwaysValidOnRandomInputs) {
  util::Rng rng(7);
  metric::Metric<metric::Vector> l1(metric::LpMetric::L1());
  for (int trial = 0; trial < 100; ++trial) {
    size_t k = 1 + rng.NextBounded(12);
    size_t d = 1 + rng.NextBounded(5);
    std::vector<metric::Vector> sites(k, metric::Vector(d));
    for (auto& site : sites) {
      for (auto& coord : site) coord = rng.NextDouble();
    }
    metric::Vector query(d);
    for (auto& coord : query) coord = rng.NextDouble();
    Permutation perm = ComputeDistancePermutation(sites, l1, query);
    EXPECT_TRUE(IsPermutation(perm));
    EXPECT_EQ(perm.size(), k);
  }
}

}  // namespace
}  // namespace core
}  // namespace distperm
