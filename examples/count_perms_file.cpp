// Command-line permutation counter — the equivalent of the paper's
// `build-distperm-*` instrumentation: load (or generate) a vector
// dataset, pick k random sites, count the distinct distance permutations
// under a chosen Lp metric, and report the storage implications.
//
//   # count permutations of your own data (whitespace format: "n d"
//   # header then one point per line):
//   ./example_count_perms_file --input=points.txt --sites=8 --p=2
//
//   # or generate-and-save a demo dataset first:
//   ./example_count_perms_file --generate=50000 --dim=3
//       --output=points.txt --sites=8   (one line)

#include <cmath>
#include <iostream>

#include "core/dimension_estimate.h"
#include "core/euclidean_count.h"
#include "core/perm_counter.h"
#include "core/bounds.h"
#include "core/perm_table.h"
#include "dataset/io.h"
#include "dataset/vector_gen.h"
#include "metric/lp.h"
#include "util/flags.h"
#include "util/rng.h"

using distperm::metric::Vector;

int main(int argc, char** argv) {
  auto parsed = distperm::util::Flags::Parse(argc, argv);
  if (!parsed.ok()) {
    std::cerr << parsed.status() << "\n";
    return 1;
  }
  const auto& flags = parsed.value();
  const size_t sites_count =
      static_cast<size_t>(flags.GetInt("sites", 8));
  const double p = flags.GetDouble("p", 2.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));

  distperm::util::Rng rng(seed);
  std::vector<Vector> data;
  if (flags.Has("input")) {
    auto loaded = distperm::dataset::ReadVectors(flags.GetString("input", ""));
    if (!loaded.ok()) {
      std::cerr << "failed to read dataset: " << loaded.status() << "\n";
      return 1;
    }
    data = std::move(loaded).value();
  } else {
    size_t n = static_cast<size_t>(flags.GetInt("generate", 50000));
    size_t d = static_cast<size_t>(flags.GetInt("dim", 3));
    data = distperm::dataset::UniformCube(n, d, &rng);
    std::cout << "generated " << n << " uniform points in " << d
              << " dimensions\n";
    if (flags.Has("output")) {
      auto status =
          distperm::dataset::WriteVectors(flags.GetString("output", ""),
                                          data);
      if (!status.ok()) {
        std::cerr << "failed to write dataset: " << status << "\n";
        return 1;
      }
      std::cout << "saved to " << flags.GetString("output", "") << "\n";
    }
  }
  if (data.size() < sites_count) {
    std::cerr << "dataset too small for " << sites_count << " sites\n";
    return 1;
  }
  const size_t dim = data[0].size();

  distperm::metric::Metric<Vector> metric{distperm::metric::LpMetric(p)};
  auto sites =
      distperm::core::SelectRandomSites(data, sites_count, &rng);
  auto count = distperm::core::CountDistinctPermutations(data, sites,
                                                         metric);

  std::cout << "\ndatabase: n = " << data.size() << ", d = " << dim
            << ", metric = " << metric.name() << ", k = " << sites_count
            << " random sites\n";
  std::cout << "distinct distance permutations: "
            << count.distinct_permutations << "\n";
  distperm::core::EuclideanCounter counter;
  std::cout << "Euclidean maximum N_{" << dim << ",2}(" << sites_count
            << "): "
            << counter.Count(static_cast<int>(dim),
                             static_cast<int>(sites_count))
            << "\n";
  std::cout << "k! = "
            << distperm::util::BigUint::Factorial(sites_count) << "\n";
  double estimate = distperm::core::EstimateEuclideanDimension(
      count.distinct_permutations, static_cast<int>(sites_count));
  std::cout << "permutation-count dimension estimate: " << estimate
            << "\n";
  int index_bits =
      count.distinct_permutations <= 1
          ? 0
          : static_cast<int>(std::ceil(
                std::log2(static_cast<double>(
                    count.distinct_permutations))));
  std::cout << "index bits per point if table-compressed: " << index_bits
            << " (raw permutation would need "
            << distperm::core::UnrestrictedPermutationBits(
                   static_cast<int>(sites_count))
            << ")\n";
  return 0;
}
