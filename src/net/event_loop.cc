#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

namespace distperm {
namespace net {

namespace {
std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}
}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  DP_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  DP_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  DP_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) == 0);
}

EventLoop::~EventLoop() {
  close(wake_fd_);
  close(epoll_fd_);
}

util::Status EventLoop::Add(int fd, uint32_t events, Callback callback) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    return util::Status::IoError(Errno("net: epoll add"));
  }
  callbacks_[fd] = std::move(callback);
  return util::Status::OK();
}

util::Status EventLoop::Modify(int fd, uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) != 0) {
    return util::Status::IoError(Errno("net: epoll modify"));
  }
  return util::Status::OK();
}

void EventLoop::Remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Run() {
  running_.store(true, std::memory_order_relaxed);
  std::vector<epoll_event> events(64);
  while (!stop_.load(std::memory_order_acquire)) {
    const int ready = epoll_wait(epoll_fd_, events.data(),
                                 static_cast<int>(events.size()),
                                 tick_interval_ms_);
    if (ready < 0 && errno != EINTR) break;
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // Re-resolve per event: an earlier callback in this wave may
      // have removed this fd (closing a connection closes its peer's
      // entry too, for instance).
      auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      it->second(events[i].events);
    }
    if (tick_) tick_();
  }
  running_.store(false, std::memory_order_relaxed);
  stop_.store(false, std::memory_order_release);  // allow a later Run()
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Wake() {
  const uint64_t one = 1;
  [[maybe_unused]] ssize_t written = write(wake_fd_, &one, sizeof(one));
}

}  // namespace net
}  // namespace distperm
