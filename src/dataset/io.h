// ASCII dataset I/O.
//
// Simple line-oriented formats so the example binaries can exchange
// datasets with external tools:
//   vectors:  first line "n d", then one point per line, d numbers;
//   strings:  one string per line.

#ifndef DISTPERM_DATASET_IO_H_
#define DISTPERM_DATASET_IO_H_

#include <string>
#include <vector>

#include "metric/metric.h"
#include "util/status.h"

namespace distperm {
namespace dataset {

/// Writes vectors to `path`.  All points must share one dimension.
util::Status WriteVectors(const std::string& path,
                          const std::vector<metric::Vector>& points);

/// Reads vectors from `path`.  Errors are precise so callers can
/// branch: NotFound when the path names nothing, IoError for an
/// unreadable file / malformed header / fewer points than the header
/// promises / non-numeric tokens, InvalidArgument when a point's
/// dimension disagrees with the header.
util::Result<std::vector<metric::Vector>> ReadVectors(
    const std::string& path);

/// Writes strings, one per line.  Strings must not contain newlines.
util::Status WriteStrings(const std::string& path,
                          const std::vector<std::string>& lines);

/// Reads strings, one per line (trailing newline optional).  NotFound
/// when the path names nothing; IoError when the stream fails mid-read.
util::Result<std::vector<std::string>> ReadStrings(const std::string& path);

}  // namespace dataset
}  // namespace distperm

#endif  // DISTPERM_DATASET_IO_H_
