// Telemetry walkthrough: wire a LiveDatabase and a caller-owned
// QueryEngine into one obs::MetricsRegistry, run a small mixed
// workload (batches, inserts, a removal, a compaction), then read the
// engine back out — a traced query's per-shard span table, the
// Prometheus-style text exposition, and the JSON dump.
//
// Exits nonzero if any telemetry invariant fails: traced spans must
// partition each query's distance count exactly, tracing must not
// perturb results, and the registry counters must reproduce the
// workload's exact accounting.
//
//   ./example_engine_stats [--points=2000] [--dim=8] [--shards=4]
//                          [--index=vp-tree] [--seed=42]

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "dataset/vector_gen.h"
#include "engine/live_database.h"
#include "engine/query.h"
#include "engine/query_engine.h"
#include "metric/lp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table_printer.h"

using distperm::engine::LiveDatabase;
using distperm::engine::QueryEngine;
using distperm::engine::QuerySpec;
using distperm::metric::Vector;

namespace {

std::string Us(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", seconds * 1e6);
  return buffer;
}

std::string Bound(double bound) {
  if (std::isinf(bound)) return "inf";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4f", bound);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = distperm::util::Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::cerr << flags.status() << "\n";
    return 1;
  }
  const size_t points =
      static_cast<size_t>(flags.value().GetInt("points", 2000));
  const size_t dim = static_cast<size_t>(flags.value().GetInt("dim", 8));
  const size_t shards =
      static_cast<size_t>(flags.value().GetInt("shards", 4));
  const uint64_t seed =
      static_cast<uint64_t>(flags.value().GetInt("seed", 42));
  const std::string index = flags.value().GetString("index", "vp-tree");

  // 1. One registry for the whole serving stack.  The LiveDatabase
  //    records its live_* series and wires its built-in engine; the
  //    caller-owned engine shares the same engine_*/threadpool_*
  //    instruments, so both aggregate into one exposition.
  distperm::obs::MetricsRegistry registry("engine_stats");
  distperm::util::Rng rng(seed);
  auto data = distperm::dataset::UniformCube(points, dim, &rng);
  distperm::metric::Metric<Vector> l2(distperm::metric::LpMetric::L2());
  distperm::engine::LiveOptions options;
  options.query_threads = 2;
  options.metrics = &registry;
  auto opened =
      LiveDatabase<Vector>::Open(data, l2, shards, index, seed, options);
  if (!opened.ok()) {
    std::cerr << opened.status() << "\n";
    return 1;
  }
  LiveDatabase<Vector>& live = *opened.value();
  std::cout << "opened " << live.index_spec() << " x " << shards
            << " shards with metrics registry \"" << registry.name()
            << "\"\n";

  // 2. A small workload: query batches around writes and a compaction,
  //    so every instrument family has something to show.
  std::vector<QuerySpec<Vector>> batch;
  for (int q = 0; q < 16; ++q) {
    Vector point(dim);
    for (double& c : point) c = rng.NextDouble();
    batch.push_back(q % 2 == 0 ? QuerySpec<Vector>::Knn(point, 8)
                               : QuerySpec<Vector>::Range(point, 0.4));
  }
  auto before = live.RunBatch(batch);
  uint64_t expected_distances = before.stats.distance_computations;
  for (int i = 0; i < 32; ++i) {
    Vector point(dim, 0.25 + 0.01 * i);
    if (!live.Insert(point).ok()) {
      std::cerr << "insert failed\n";
      return 1;
    }
  }
  if (!live.Remove(0).ok() || !live.Compact().ok()) {
    std::cerr << "remove/compact failed\n";
    return 1;
  }
  auto after = live.RunBatch(batch);
  expected_distances += after.stats.distance_computations;

  // 3. One traced query on a caller-owned engine sharing the registry:
  //    the spans name each shard's window, cost, and the cooperative
  //    bound it saw.
  QueryEngine<Vector> engine(2);
  engine.EnableMetrics(&registry);
  Vector probe(dim, 0.5);
  auto traced = live.RunBatch(
      engine,
      {QuerySpec<Vector>::Knn(probe, 8)
           .WithShardScheduling(distperm::index::ShardScheduling::kCooperative)
           .WithTrace()});
  auto untraced =
      live.RunBatch(engine, {QuerySpec<Vector>::Knn(probe, 8)});
  expected_distances += traced.stats.distance_computations +
                        untraced.stats.distance_computations;
  if (!traced.all_ok() || !untraced.all_ok()) {
    std::cerr << "traced batch rejected\n";
    return 1;
  }

  const distperm::obs::SearchTrace& trace = traced.traces[0];
  std::cout << "\ntraced 8-NN query (" << trace.spans.size()
            << " spans, times relative to batch start):\n\n";
  distperm::util::TablePrinter span_table;
  span_table.SetHeader({"span", "start us", "stop us", "distances",
                        "bound in", "bound out"});
  for (const auto& span : trace.spans) {
    span_table.AddRow({span.delta ? "delta" : "shard " +
                                                  std::to_string(span.shard),
                       Us(span.start_seconds), Us(span.stop_seconds),
                       std::to_string(span.distance_computations),
                       Bound(span.bound_entry), Bound(span.bound_exit)});
  }
  span_table.Print(std::cout);

  // 4. The exposition surfaces: Prometheus-style text and the JSON
  //    dump with derived percentiles.
  std::cout << "\n--- TextExposition ---\n" << registry.TextExposition();
  std::cout << "\n--- JsonExposition ---\n"
            << registry.JsonExposition() << "\n";

  // 5. Invariants.  Failures exit nonzero so CI can run this example
  //    as a smoke check.
  if (trace.total_distance_computations() !=
      traced.per_query_distance_computations[0]) {
    std::cerr << "FAIL: trace spans do not partition the query's "
                 "distance count\n";
    return 1;
  }
  if (traced.results != untraced.results) {
    std::cerr << "FAIL: tracing perturbed the results\n";
    return 1;
  }
  const uint64_t counted =
      registry.GetCounter("engine_distance_computations_total")->Value();
  if (counted != expected_distances) {
    std::cerr << "FAIL: engine_distance_computations_total " << counted
              << " != workload total " << expected_distances << "\n";
    return 1;
  }
  if (registry.GetCounter("live_inserts_total")->Value() != 32 ||
      registry.GetCounter("live_compactions_total")->Value() != 1) {
    std::cerr << "FAIL: live write/compaction counters diverge from the "
                 "workload\n";
    return 1;
  }
  std::cout << "all telemetry invariants hold\n";
  return 0;
}
