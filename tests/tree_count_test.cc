#include "core/tree_count.h"

#include <gtest/gtest.h>

#include <tuple>

#include "core/euclidean_count.h"
#include "core/perm_codec.h"
#include "util/rng.h"

namespace distperm {
namespace core {
namespace {

using metric::WeightedTree;

TEST(TreeBound, Values) {
  EXPECT_EQ(TreePermutationBound(1), 1u);
  EXPECT_EQ(TreePermutationBound(2), 2u);
  EXPECT_EQ(TreePermutationBound(3), 4u);
  EXPECT_EQ(TreePermutationBound(4), 7u);
  EXPECT_EQ(TreePermutationBound(12), 67u);
}

TEST(TreeBound, MatchesOneDimensionalEuclidean) {
  // The paper notes N_{1,2}(k) = C(k,2) + 1 equals the tree bound.
  EuclideanCounter counter;
  for (int k = 1; k <= 20; ++k) {
    EXPECT_EQ(TreePermutationBound(static_cast<size_t>(k)),
              counter.Count64(1, k));
  }
}

TEST(Corollary5, AchievesBoundExactly) {
  for (size_t k = 1; k <= 8; ++k) {
    PathConstruction pc = Corollary5Construction(k);
    EXPECT_EQ(pc.sites.size(), k);
    size_t count = CountTreePermutationsBruteForce(pc.tree, pc.sites);
    EXPECT_EQ(count, TreePermutationBound(k)) << "k=" << k;
    size_t by_edges = CountTreePermutationsBySplitEdges(pc.tree, pc.sites);
    EXPECT_EQ(by_edges, TreePermutationBound(k)) << "k=" << k;
  }
}

TEST(Corollary5, SitesArePowersOfTwo) {
  PathConstruction pc = Corollary5Construction(5);
  EXPECT_EQ(pc.sites, (std::vector<size_t>{0, 2, 4, 8, 16}));
  EXPECT_EQ(pc.tree.size(), 17u);  // 2^4 edges -> 17 vertices
}

TEST(TreeCount, SingleSiteSinglePermutation) {
  WeightedTree path = WeightedTree::MakePath(10);
  EXPECT_EQ(CountTreePermutationsBruteForce(path, {3}), 1u);
  EXPECT_EQ(CountTreePermutationsBySplitEdges(path, {3}), 1u);
}

TEST(TreeCount, TwoSitesOnPath) {
  // Two sites split a path into two components: 2 permutations.
  WeightedTree path = WeightedTree::MakePath(10);
  EXPECT_EQ(CountTreePermutationsBruteForce(path, {0, 9}), 2u);
  EXPECT_EQ(CountTreePermutationsBySplitEdges(path, {0, 9}), 2u);
}

TEST(TreeCount, AdjacentSitesStillSplit) {
  WeightedTree path = WeightedTree::MakePath(6);
  EXPECT_EQ(CountTreePermutationsBruteForce(path, {2, 3}), 2u);
}

TEST(TreeCount, StarWithLeafSites) {
  // Star center 0 with k leaf sites: the center is equidistant from all
  // sites (tie-break gives identity), each leaf arm is closest to its own
  // site.  With k = 3 leaves at distance 1: permutations = 1 (centre,
  // identity by tie-break, which equals leaf-agnostic ordering?) — count
  // both ways and require consistency rather than a hand value.
  WeightedTree star = WeightedTree::MakeStar(6);
  std::vector<size_t> sites = {1, 2, 3};
  size_t brute = CountTreePermutationsBruteForce(star, sites);
  size_t split = CountTreePermutationsBySplitEdges(star, sites);
  EXPECT_EQ(brute, split);
  EXPECT_LE(brute, TreePermutationBound(3));
  EXPECT_GE(brute, 3u);  // each leaf's own arm at least
}

TEST(TreeCount, EnumerationMatchesCount) {
  PathConstruction pc = Corollary5Construction(4);
  auto perms = EnumerateTreePermutations(pc.tree, pc.sites);
  EXPECT_EQ(perms.size(),
            CountTreePermutationsBruteForce(pc.tree, pc.sites));
  for (const auto& perm : perms) {
    EXPECT_TRUE(IsPermutation(perm));
    EXPECT_EQ(perm.size(), 4u);
  }
  // Sorted by Lehmer rank, hence strictly increasing.
  for (size_t i = 1; i < perms.size(); ++i) {
    EXPECT_LT(RankPermutation(perms[i - 1]), RankPermutation(perms[i]));
  }
}

class RandomTreeCountTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomTreeCountTest, BruteForceMatchesSplitEdges) {
  auto [seed, k] = GetParam();
  util::Rng rng(4000 + seed);
  size_t n = 20 + rng.NextBounded(60);
  WeightedTree tree = WeightedTree::MakeRandom(n, &rng, 1.0, 1.0);
  std::vector<size_t> sites;
  for (size_t id : rng.SampleDistinct(n, static_cast<size_t>(k))) {
    sites.push_back(id);
  }
  size_t brute = CountTreePermutationsBruteForce(tree, sites);
  size_t split = CountTreePermutationsBySplitEdges(tree, sites);
  EXPECT_EQ(brute, split) << "n=" << n << " k=" << k;
  EXPECT_LE(brute, TreePermutationBound(static_cast<size_t>(k)));
}

TEST_P(RandomTreeCountTest, WeightedTreesRespectBound) {
  auto [seed, k] = GetParam();
  util::Rng rng(5000 + seed);
  size_t n = 20 + rng.NextBounded(40);
  // Generic (irrational-free but distinct) weights avoid ties entirely.
  WeightedTree tree = WeightedTree::MakeRandom(n, &rng, 0.5, 2.5);
  std::vector<size_t> sites;
  for (size_t id : rng.SampleDistinct(n, static_cast<size_t>(k))) {
    sites.push_back(id);
  }
  size_t brute = CountTreePermutationsBruteForce(tree, sites);
  EXPECT_EQ(brute, CountTreePermutationsBySplitEdges(tree, sites));
  EXPECT_LE(brute, TreePermutationBound(static_cast<size_t>(k)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomTreeCountTest,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(2, 3, 5, 8)));

TEST(TreeCount, UnachievableOnShortPath) {
  // A path shorter than the Corollary 5 construction cannot realise the
  // bound for k = 4 (C(4,2)+1 = 7 components need 6 distinct split edges).
  WeightedTree path = WeightedTree::MakePath(5);  // 4 edges only
  std::vector<size_t> sites = {0, 1, 2, 3};
  size_t count = CountTreePermutationsBruteForce(path, sites);
  EXPECT_LT(count, TreePermutationBound(4));
  EXPECT_EQ(count, CountTreePermutationsBySplitEdges(path, sites));
}

}  // namespace
}  // namespace core
}  // namespace distperm
